//! Block-level coloring for shared-memory parallel execution.
//!
//! [`crate::coloring`] colors *individual iterations*; executing color by
//! color the per-element update order follows the color sequence, not the
//! iteration order, so floating-point increments reassociate and results
//! drift from [`crate::seq`]. This module colors **blocks** of contiguous
//! iterations instead, with a *levelized, order-preserving* rule:
//!
//! > `color(b) = 1 + max{ color(b') : b' < b and b' conflicts with b }`
//!
//! Two blocks conflict when they touch a common element of any dat the
//! loop modifies through a map (with at least one of the two accesses
//! modifying). Consequences:
//!
//! * **race freedom** — same-color blocks touch disjoint modified
//!   elements, so they can run on different threads without atomics;
//! * **order preservation** — a conflicting pair `b' < b` always has
//!   `color(b') < color(b)`, and colors execute in ascending order, so
//!   every element receives its updates in ascending block order. Blocks
//!   are contiguous ascending ranges, so the per-element update sequence
//!   is *identical* to plain sequential execution: results are **bitwise
//!   equal** to [`crate::seq::run_loop`], independent of thread count and
//!   block schedule within a color. (Plain greedy coloring cannot promise
//!   this — it reorders conflicting iterations across colors.)
//!
//! The price is more colors than a greedy minimum; block counts are small
//! (`n/block_size`), so the per-color barrier cost stays negligible for
//! the loop sizes worth threading.

use crate::access::Arg;
use crate::coloring::Coloring;
use crate::domain::{Domain, MapData};
use crate::loops::LoopSig;

/// A coloring of contiguous iteration blocks over `[start, end)`.
#[derive(Debug, Clone)]
pub struct BlockColoring {
    /// First iteration covered.
    pub start: usize,
    /// One-past-last iteration covered.
    pub end: usize,
    /// Iterations per block (last block may be short).
    pub block_size: usize,
    /// Number of colors.
    pub n_colors: usize,
    /// Color of every block.
    pub color: Vec<u32>,
    /// Block ids per color, ascending.
    pub by_color: Vec<Vec<u32>>,
}

impl BlockColoring {
    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.color.len()
    }

    /// Iteration range `[s, e)` of block `b`.
    pub fn block_range(&self, b: usize) -> (usize, usize) {
        let s = self.start + b * self.block_size;
        (s, (s + self.block_size).min(self.end))
    }

    /// Expand to a per-iteration [`Coloring`] (each iteration inherits
    /// its block's color) — the bridge to
    /// [`crate::coloring::is_valid_coloring`]. Only defined for
    /// `block_size == 1` colorings covering a whole set from iteration 0:
    /// with larger blocks, two same-block (hence same-color) iterations
    /// may legitimately conflict — they run sequentially on one thread —
    /// which the per-element validity check would reject.
    pub fn element_coloring(&self) -> Coloring {
        assert_eq!(self.start, 0, "element_coloring needs a full-set coloring");
        assert_eq!(
            self.block_size, 1,
            "element_coloring is the block_size=1 bridge to `coloring`"
        );
        let mut color = vec![0u32; self.end];
        let mut by_color: Vec<Vec<u32>> = vec![Vec::new(); self.n_colors];
        for b in 0..self.n_blocks() {
            let c = self.color[b];
            let (s, e) = self.block_range(b);
            for i in s..e {
                color[i] = c;
                by_color[c as usize].push(i as u32);
            }
        }
        Coloring {
            n_colors: self.n_colors,
            color,
            by_color,
        }
    }
}

/// One access that can induce a cross-iteration conflict: which set it
/// lands on, through which map (or directly), and whether it modifies.
#[derive(Debug, Clone, Copy)]
pub struct ConflictAccess<'a> {
    /// `Some((map values, arity, index))` for indirect accesses, `None`
    /// for direct ones (target element = iteration index).
    pub map: Option<(&'a [u32], usize, usize)>,
    /// Target set index.
    pub set: usize,
    /// Whether this access modifies the target element.
    pub writes: bool,
}

impl ConflictAccess<'_> {
    /// Target element of iteration `e` in the access's target set.
    #[inline]
    pub(crate) fn target(&self, e: usize) -> usize {
        match self.map {
            Some((values, arity, idx)) => values[e * arity + idx] as usize,
            None => e,
        }
    }
}

/// The accesses of `sig` that can conflict across iterations: every
/// access (direct or indirect, read or write) of a dat the loop modifies
/// *through a map*. Dats modified only directly are excluded — each
/// iteration owns its element, so no two iterations collide on them.
pub fn conflict_accesses<'a>(maps: &'a [MapData], sig: &LoopSig) -> Vec<ConflictAccess<'a>> {
    let mut out = Vec::new();
    for d in sig.dats() {
        let Some((mode, indirect)) = sig.access_of(d) else {
            continue;
        };
        if !(mode.modifies() && indirect) {
            continue;
        }
        for a in &sig.args {
            if let Arg::Dat { dat, map, mode } = a {
                if *dat != d {
                    continue;
                }
                match map {
                    Some((m, idx)) => {
                        let md = &maps[m.idx()];
                        out.push(ConflictAccess {
                            map: Some((md.values.as_slice(), md.arity, *idx as usize)),
                            set: md.to.idx(),
                            writes: mode.modifies(),
                        });
                    }
                    None => out.push(ConflictAccess {
                        map: None,
                        set: sig.set.idx(),
                        writes: mode.modifies(),
                    }),
                }
            }
        }
    }
    out
}

/// Levelized order-preserving block coloring of `[start, end)` (see the
/// module docs for the rule and its guarantees). `set_sizes` bounds the
/// target index space per set; `accesses` comes from
/// [`conflict_accesses`]. Works on global domains and on localized rank
/// layouts alike — callers pass whichever maps the iteration range
/// dereferences.
pub fn color_blocks_raw(
    start: usize,
    end: usize,
    block_size: usize,
    set_sizes: &[usize],
    accesses: &[ConflictAccess<'_>],
) -> BlockColoring {
    assert!(block_size >= 1, "block_size must be at least 1");
    let n_iter = end.saturating_sub(start);
    let n_blocks = n_iter.div_ceil(block_size);
    if accesses.is_empty() || n_blocks <= 1 {
        return BlockColoring {
            start,
            end,
            block_size,
            n_colors: usize::from(n_blocks > 0),
            color: vec![0; n_blocks],
            by_color: if n_blocks > 0 {
                vec![(0..n_blocks as u32).collect()]
            } else {
                Vec::new()
            },
        };
    }

    // Highest 1-based color of an earlier write / read touching each
    // element (0 = untouched). A writer must come strictly after every
    // earlier toucher; a reader only after earlier writers.
    let mut last_w: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![0u32; s]).collect();
    let mut last_r: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![0u32; s]).collect();
    let mut color = vec![0u32; n_blocks];
    let mut n_colors = 1usize;
    for b in 0..n_blocks {
        let s = start + b * block_size;
        let e = (s + block_size).min(end);
        let mut need = 0u32;
        for i in s..e {
            for a in accesses {
                let t = a.target(i);
                need = need.max(last_w[a.set][t]);
                if a.writes {
                    need = need.max(last_r[a.set][t]);
                }
            }
        }
        let c1 = need + 1; // this block's 1-based color
        color[b] = c1 - 1;
        n_colors = n_colors.max(c1 as usize);
        for i in s..e {
            for a in accesses {
                let t = a.target(i);
                let slot = if a.writes {
                    &mut last_w[a.set][t]
                } else {
                    &mut last_r[a.set][t]
                };
                *slot = (*slot).max(c1);
            }
        }
    }

    let mut by_color: Vec<Vec<u32>> = vec![Vec::new(); n_colors];
    for (b, &c) in color.iter().enumerate() {
        by_color[c as usize].push(b as u32);
    }
    BlockColoring {
        start,
        end,
        block_size,
        n_colors,
        color,
        by_color,
    }
}

/// Color the whole iteration set of `sig` over the global domain.
pub fn color_blocks(dom: &Domain, sig: &LoopSig, block_size: usize) -> BlockColoring {
    let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
    let accesses = conflict_accesses(dom.maps(), sig);
    color_blocks_raw(0, dom.set(sig.set).size, block_size, &set_sizes, &accesses)
}

/// Verify a block coloring against the raw conflict structure:
/// completeness (every block colored exactly once), race freedom (no two
/// same-color blocks conflict) and order preservation (conflicting
/// blocks are colored in ascending block order — the bitwise-identity
/// contract). Used by tests and debug assertions.
pub fn is_valid_block_coloring_raw(
    set_sizes: &[usize],
    accesses: &[ConflictAccess<'_>],
    bc: &BlockColoring,
) -> bool {
    let n_blocks = bc.n_blocks();
    if n_blocks != bc.end.saturating_sub(bc.start).div_ceil(bc.block_size.max(1)) {
        return false;
    }
    // Partition check.
    let mut seen = vec![false; n_blocks];
    for (c, bucket) in bc.by_color.iter().enumerate() {
        for &b in bucket {
            let b = b as usize;
            if b >= n_blocks || seen[b] || bc.color[b] as usize != c {
                return false;
            }
            seen[b] = true;
        }
    }
    if !seen.iter().all(|&s| s) {
        return false;
    }
    // Per-element touch lists: (block, writes).
    let mut touches: Vec<Vec<Vec<(u32, bool)>>> = set_sizes
        .iter()
        .map(|&s| vec![Vec::new(); s])
        .collect();
    for b in 0..n_blocks {
        let (s, e) = bc.block_range(b);
        for i in s..e {
            for a in accesses {
                touches[a.set][a.target(i)].push((b as u32, a.writes));
            }
        }
    }
    for per_set in &touches {
        for list in per_set {
            for (i, &(b1, w1)) in list.iter().enumerate() {
                for &(b2, w2) in &list[i + 1..] {
                    if b1 == b2 || !(w1 || w2) {
                        continue; // intra-block or read-read: no conflict
                    }
                    let (lo, hi) = if b1 < b2 { (b1, b2) } else { (b2, b1) };
                    if bc.color[lo as usize] >= bc.color[hi as usize] {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// [`is_valid_block_coloring_raw`] over the global domain.
pub fn is_valid_block_coloring(dom: &Domain, sig: &LoopSig, bc: &BlockColoring) -> bool {
    let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
    let accesses = conflict_accesses(dom.maps(), sig);
    is_valid_block_coloring_raw(&set_sizes, &accesses, bc)
}

/// Average number of conflict-inducing touches per distinct element over
/// `[start, end)` — the mesh's measured *conflict degree* for one loop.
/// Sampled over at most the first 4096 iterations (enough to
/// characterise a mesh; keeps the probe O(1) for huge ranges). Returns
/// `0.0` when the loop has no conflict accesses (direct-only loops).
pub fn conflict_degree(
    start: usize,
    end: usize,
    set_sizes: &[usize],
    accesses: &[ConflictAccess<'_>],
) -> f64 {
    if accesses.is_empty() || end <= start {
        return 0.0;
    }
    let sample_end = end.min(start + 4096);
    let mut touched: Vec<Vec<bool>> = set_sizes.iter().map(|&s| vec![false; s]).collect();
    let mut touches = 0usize;
    let mut distinct = 0usize;
    for i in start..sample_end {
        for a in accesses {
            let t = a.target(i);
            touches += 1;
            if !touched[a.set][t] {
                touched[a.set][t] = true;
                distinct += 1;
            }
        }
    }
    if distinct == 0 {
        0.0
    } else {
        touches as f64 / distinct as f64
    }
}

/// Smallest block size `OP2_BLOCK_SIZE=auto` will pick.
pub const AUTO_BLOCK_MIN: usize = 32;
/// Largest block size `OP2_BLOCK_SIZE=auto` will pick (also used for
/// conflict-free loops, where blocks only bound scheduling granularity).
pub const AUTO_BLOCK_MAX: usize = 2048;

/// Pick a per-loop block size from the measured [`conflict_degree`]:
/// high-degree meshes (many iterations sharing each element) get smaller
/// blocks so the levelized coloring keeps its color count down, while
/// direct or conflict-free loops get large streaming blocks. The choice
/// is deterministic in the mesh structure, so repeated runs (and all
/// threads of one rank) agree.
pub fn adaptive_block_size(
    start: usize,
    end: usize,
    set_sizes: &[usize],
    accesses: &[ConflictAccess<'_>],
) -> usize {
    let degree = conflict_degree(start, end, set_sizes, accesses);
    if degree <= 1.0 {
        return AUTO_BLOCK_MAX; // direct or disjoint: stream freely
    }
    ((1024.0 / degree) as usize).clamp(AUTO_BLOCK_MIN, AUTO_BLOCK_MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessMode;
    use crate::kernel::Args;
    use crate::loops::LoopSpec;
    use crate::schedule::{run_loop_schedule_threads, Schedule};

    fn noop(_: &Args<'_>) {}

    /// Edge→node FP increment kernel whose result is order-sensitive:
    /// res[n] += pres[other] * scale, with irrational-ish values so any
    /// reassociation shows up bitwise.
    fn flux_kernel(args: &Args<'_>) {
        let a = args.get(2, 0);
        let b = args.get(3, 0);
        args.inc(0, 0, (b - a) * 0.123456789);
        args.inc(1, 0, (a - b) * 0.987654321);
    }

    fn path_fixture(n_nodes: usize) -> (Domain, LoopSpec) {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n_nodes);
        let edges = dom.decl_set("edges", n_nodes - 1);
        let vals: Vec<u32> = (0..n_nodes as u32 - 1).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let pres: Vec<f64> = (0..n_nodes).map(|i| (i as f64 * 0.7).sin()).collect();
        let p = dom.decl_dat("pres", nodes, 1, pres);
        let r = dom.decl_dat_zeros("res", nodes, 1);
        let spec = LoopSpec::new(
            "flux",
            edges,
            vec![
                Arg::dat_indirect(r, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(r, e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(p, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(p, e2n, 1, AccessMode::Read),
            ],
            flux_kernel,
        );
        (dom, spec)
    }

    /// On a path graph, consecutive blocks share one node: the levelized
    /// rule must give strictly increasing colors along the path.
    #[test]
    fn path_blocks_level_like_a_ladder() {
        let (dom, spec) = path_fixture(65);
        let bc = color_blocks(&dom, &spec.sig(), 16);
        assert_eq!(bc.n_blocks(), 4);
        assert!(is_valid_block_coloring(&dom, &spec.sig(), &bc));
        // Every adjacent block pair conflicts, so colors strictly climb.
        assert_eq!(bc.color, vec![0, 1, 2, 3]);
    }

    /// Blocks that touch disjoint elements share color 0.
    #[test]
    fn disjoint_blocks_share_a_color() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 8);
        let edges = dom.decl_set("edges", 4);
        // Edges 2i -- 2i+1: no two edges share a node.
        let vals: Vec<u32> = (0..4u32).flat_map(|i| [2 * i, 2 * i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let r = dom.decl_dat_zeros("res", nodes, 1);
        let spec = LoopSpec::new(
            "inc",
            edges,
            vec![
                Arg::dat_indirect(r, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(r, e2n, 1, AccessMode::Inc),
            ],
            noop,
        );
        let bc = color_blocks(&dom, &spec.sig(), 1);
        assert_eq!(bc.n_colors, 1);
        assert!(is_valid_block_coloring(&dom, &spec.sig(), &bc));
    }

    /// Direct-only loops need one color regardless of block size.
    #[test]
    fn direct_loop_single_color() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 100);
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let spec = LoopSpec::new("w", nodes, vec![Arg::dat_direct(a, AccessMode::Write)], noop);
        let bc = color_blocks(&dom, &spec.sig(), 8);
        assert_eq!(bc.n_colors, 1);
        assert!(is_valid_block_coloring(&dom, &spec.sig(), &bc));
    }

    /// Bitwise identity against the sequential reference for 1..4
    /// threads on an order-sensitive FP kernel, going through the
    /// `Schedule` lowering of the block coloring.
    #[test]
    fn blocked_execution_bitwise_equals_seq() {
        let (mut seq_dom, spec) = path_fixture(257);
        crate::seq::run_loop(&mut seq_dom, &spec);
        let reference = seq_dom.dat(seq_dom.dat_by_name("res").unwrap()).data.clone();

        for threads in 1..=4usize {
            for block_size in [1usize, 7, 32, 1024] {
                let (mut dom, spec) = path_fixture(257);
                let bc = color_blocks(&dom, &spec.sig(), block_size);
                debug_assert!(is_valid_block_coloring(&dom, &spec.sig(), &bc));
                let sched = Schedule::from_block_coloring(&bc);
                assert_eq!(sched.n_levels(), bc.n_colors);
                assert_eq!(sched.n_chunks(), bc.n_blocks());
                run_loop_schedule_threads(&mut dom, &spec, &sched, threads);
                let got = &dom.dat(dom.dat_by_name("res").unwrap()).data;
                assert_eq!(
                    got, &reference,
                    "threads={threads} block_size={block_size}"
                );
            }
        }
    }

    /// The adaptive pick shrinks blocks as the measured conflict degree
    /// grows and streams direct loops with the maximum size.
    #[test]
    fn adaptive_block_size_tracks_degree() {
        // Indirect edge loop on a path: every interior node is touched
        // by ~2 edges × 2 accesses → degree ≈ 2 → mid-range blocks.
        let (dom, spec) = path_fixture(257);
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        let accesses = conflict_accesses(dom.maps(), &spec.sig());
        let n = dom.set(spec.sig().set).size;
        let degree = conflict_degree(0, n, &set_sizes, &accesses);
        assert!(degree > 1.5, "path degree {degree}");
        let picked = adaptive_block_size(0, n, &set_sizes, &accesses);
        assert!(
            (AUTO_BLOCK_MIN..AUTO_BLOCK_MAX).contains(&picked),
            "picked {picked}"
        );

        // Direct loop: no conflict accesses → max streaming block.
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 64);
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let direct = LoopSpec::new("w", nodes, vec![Arg::dat_direct(a, AccessMode::Write)], noop);
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        let accesses = conflict_accesses(dom.maps(), &direct.sig());
        assert_eq!(
            adaptive_block_size(0, 64, &set_sizes, &accesses),
            AUTO_BLOCK_MAX
        );
    }

    /// The block_size=1 element expansion passes the per-element
    /// validity check (wiring for `coloring::is_valid_coloring`), and
    /// the order-preserving coloring never beats the greedy minimum.
    #[test]
    fn element_expansion_is_valid() {
        let (dom, spec) = path_fixture(48);
        let bc = color_blocks(&dom, &spec.sig(), 1);
        let ec = bc.element_coloring();
        assert!(crate::coloring::is_valid_coloring(&dom, &spec.sig(), &ec));
        let total: usize = ec.by_color.iter().map(Vec::len).sum();
        assert_eq!(total, 47);
        let greedy = crate::coloring::color_loop(&dom, &spec.sig());
        assert!(ec.n_colors >= greedy.n_colors);
    }

    /// A read-only indirect loop (no modifies) gets one color even when
    /// every block shares elements.
    #[test]
    fn read_only_loop_single_color() {
        let (dom, _) = path_fixture(33);
        let e2n = dom.map_by_name("e2n").unwrap();
        let p = dom.dat_by_name("pres").unwrap();
        let edges = dom.map(e2n).from;
        let spec = LoopSpec::new(
            "rd",
            edges,
            vec![Arg::dat_indirect(p, e2n, 0, AccessMode::Read)],
            noop,
        );
        let bc = color_blocks(&dom, &spec.sig(), 4);
        assert_eq!(bc.n_colors, 1);
    }
}
