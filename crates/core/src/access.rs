//! Access modes and loop-argument descriptors (`op_arg_dat` / `op_arg_gbl`).

use crate::domain::{DatId, MapId};

/// How a kernel touches a piece of data — OP2's `OP_READ`, `OP_WRITE`,
/// `OP_RW` and `OP_INC`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Read-only (`OP_READ`).
    Read,
    /// Write-only; every component is overwritten (`OP_WRITE`).
    Write,
    /// Read then write (`OP_RW`).
    Rw,
    /// Associative, commutative increment (`OP_INC`). The CA back-end's
    /// redundant-compute correctness argument relies on increments being
    /// order-independent (up to machine precision), as §2.2 of the paper
    /// notes.
    Inc,
}

impl AccessMode {
    /// Does this access read the previous value?
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::Rw | AccessMode::Inc)
    }

    /// Does this access modify the value (set the dirty bit)?
    #[inline]
    pub fn modifies(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::Rw | AccessMode::Inc)
    }

    /// Short OP2-style label used when printing tables.
    pub fn label(self) -> &'static str {
        match self {
            AccessMode::Read => "READ",
            AccessMode::Write => "WRITE",
            AccessMode::Rw => "RW",
            AccessMode::Inc => "INC",
        }
    }
}

/// One kernel argument: an access descriptor.
///
/// `Dat` mirrors `op_arg_dat(dat, idx, map, dim, "double", mode)`: `map`
/// is `None` for a *direct* access (OP2's identity map `ID`, index into the
/// dat with the iteration index itself) or `Some((map, idx))` for an
/// *indirect* access through entry `idx` of the map.
///
/// `Gbl` mirrors `op_arg_gbl`: a small global buffer either read by every
/// iteration (constants) or reduced into (`Inc` — a global sum). A loop
/// with a `Gbl`/`Inc` argument is a synchronisation point and therefore can
/// never sit inside a loop-chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arg {
    /// Per-element data access.
    Dat {
        /// Which dat.
        dat: DatId,
        /// `None` = direct, `Some((map, idx))` = indirect via map entry.
        map: Option<(MapId, u16)>,
        /// Access mode.
        mode: AccessMode,
    },
    /// Global (loop-wide) buffer: constant broadcast or sum reduction.
    Gbl {
        /// Index into the loop's [`GblDecl`] list.
        idx: u16,
        /// `Read` (constant) or `Inc` (reduction) — others are rejected at
        /// loop validation.
        mode: AccessMode,
    },
}

impl Arg {
    /// Direct dat access helper.
    pub fn dat_direct(dat: DatId, mode: AccessMode) -> Self {
        Arg::Dat {
            dat,
            map: None,
            mode,
        }
    }

    /// Indirect dat access helper (through map entry `idx`).
    pub fn dat_indirect(dat: DatId, map: MapId, idx: u16, mode: AccessMode) -> Self {
        Arg::Dat {
            dat,
            map: Some((map, idx)),
            mode,
        }
    }

    /// Global-argument helper.
    pub fn gbl(idx: u16, mode: AccessMode) -> Self {
        Arg::Gbl { idx, mode }
    }

    /// The dat id if this is a dat argument.
    pub fn dat_id(&self) -> Option<DatId> {
        match self {
            Arg::Dat { dat, .. } => Some(*dat),
            Arg::Gbl { .. } => None,
        }
    }

    /// The access mode of this argument.
    pub fn mode(&self) -> AccessMode {
        match self {
            Arg::Dat { mode, .. } | Arg::Gbl { mode, .. } => *mode,
        }
    }

    /// Is this an indirect (mapped) dat access?
    pub fn is_indirect(&self) -> bool {
        matches!(
            self,
            Arg::Dat {
                map: Some(_),
                ..
            }
        )
    }
}

/// Combining operator of a global reduction — OP2's `OP_INC`, `OP_MIN`
/// and `OP_MAX` global argument flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GblOp {
    /// Sum (`OP_INC` on a global).
    #[default]
    Sum,
    /// Minimum (`OP_MIN`) — e.g. a global time-step bound.
    Min,
    /// Maximum (`OP_MAX`).
    Max,
}

impl GblOp {
    /// Combine two partial values.
    #[inline]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            GblOp::Sum => a + b,
            GblOp::Min => a.min(b),
            GblOp::Max => a.max(b),
        }
    }

    /// The operator's identity element.
    pub fn identity(self) -> f64 {
        match self {
            GblOp::Sum => 0.0,
            GblOp::Min => f64::INFINITY,
            GblOp::Max => f64::NEG_INFINITY,
        }
    }
}

/// Declaration of one global argument of a loop: its dimension and initial
/// contents. For `Read` globals the contents are the constant values; for
/// `Inc` globals they are the identity the reduction starts from, combined
/// with [`GblOp`].
#[derive(Debug, Clone)]
pub struct GblDecl {
    /// Number of components.
    pub dim: usize,
    /// Initial values (`dim` of them).
    pub init: Vec<f64>,
    /// Reduction operator (ignored for `Read` globals).
    pub op: GblOp,
}

impl GblDecl {
    /// A constant global of the given values.
    pub fn constant(values: &[f64]) -> Self {
        GblDecl {
            dim: values.len(),
            init: values.to_vec(),
            op: GblOp::Sum,
        }
    }

    /// A sum-reduction global of `dim` components.
    pub fn reduction(dim: usize) -> Self {
        GblDecl {
            dim,
            init: vec![0.0; dim],
            op: GblOp::Sum,
        }
    }

    /// A min-reduction global of `dim` components (starts at +∞).
    pub fn min_reduction(dim: usize) -> Self {
        GblDecl {
            dim,
            init: vec![f64::INFINITY; dim],
            op: GblOp::Min,
        }
    }

    /// A max-reduction global of `dim` components (starts at −∞).
    pub fn max_reduction(dim: usize) -> Self {
        GblDecl {
            dim,
            init: vec![f64::NEG_INFINITY; dim],
            op: GblOp::Max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(AccessMode::Read.reads());
        assert!(!AccessMode::Read.modifies());
        assert!(!AccessMode::Write.reads());
        assert!(AccessMode::Write.modifies());
        assert!(AccessMode::Rw.reads() && AccessMode::Rw.modifies());
        assert!(AccessMode::Inc.reads() && AccessMode::Inc.modifies());
    }

    #[test]
    fn arg_helpers() {
        let d = DatId(3);
        let m = MapId(1);
        let a = Arg::dat_indirect(d, m, 1, AccessMode::Inc);
        assert!(a.is_indirect());
        assert_eq!(a.dat_id(), Some(d));
        assert_eq!(a.mode(), AccessMode::Inc);
        let g = Arg::gbl(0, AccessMode::Inc);
        assert_eq!(g.dat_id(), None);
        assert!(!g.is_indirect());
    }
}
