//! The unified `Schedule` execution IR.
//!
//! Every way this crate runs a loop or a loop-chain — a plain sequential
//! range, a colored-blocked threaded loop, a sparse-tiled chain — is the
//! same thing at heart: an ordered list of *levels* separated by
//! synchronization barriers, each level holding iteration *chunks* that
//! are conflict-free against one another. This module makes that shape a
//! first-class value:
//!
//! * [`Piece`] — a contiguous iteration range or an explicit index list
//!   of one loop of the chain;
//! * [`Chunk`] — an ordered list of pieces executed sequentially by one
//!   worker (a colored block; a tile's slice of every loop);
//! * [`Schedule`] — levels of chunks. Chunks within a level may run
//!   concurrently; levels execute in order with a barrier between them.
//!
//! Lowerings build schedules from each scheduling strategy
//! ([`Schedule::range`], [`Schedule::from_coloring`],
//! [`Schedule::from_block_coloring`], [`Schedule::from_tile_plan`]), and
//! a single pair of executors runs them: [`run_schedule`] (sequential,
//! one thread, level and chunk order) and [`run_schedule_threads`]
//! (scoped OS threads per level — the reference threaded executor; the
//! runtime crate's pool executes the same schedules per rank).
//!
//! **Determinism contract.** When the lowering guarantees that (a)
//! same-level chunks touch disjoint modified elements and (b) every
//! conflicting chunk pair is ordered by level in ascending iteration
//! order — as the levelized block coloring and the leveled tile plan do —
//! the per-element update sequence under any thread count equals the
//! sequential one, so results are **bitwise identical** to
//! [`crate::seq::run_loop`] / the sequential tiled walk.
//!
//! [`BoundLoop`] is the one argument-resolution and kernel-invocation
//! path shared by every executor: base pointers resolved once per loop,
//! value-based slot access per iteration. The distributed runtime binds
//! its rank-local buffers through [`BoundLoop::from_parts`] and reuses
//! the same chunk walker, so there is exactly one execution loop in the
//! codebase regardless of back-end.

use crate::access::{AccessMode, Arg};
use crate::coloring::Coloring;
use crate::domain::Domain;
use crate::kernel::{Args, ArgSlot, KernelFn};
use crate::loops::LoopSpec;
use crate::par::BlockColoring;
use crate::tiling::TilePlan;

/// One contiguous or listed slice of one loop's iteration space, or a
/// fused slice interleaving every loop of one fusion group per element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// Iterations `[start, end)` of chain loop `loop_idx`.
    Range {
        loop_idx: u32,
        start: u32,
        end: u32,
    },
    /// An explicit ascending iteration list of chain loop `loop_idx`.
    List { loop_idx: u32, iters: Vec<u32> },
    /// Iterations `[start, end)` running *every* loop of fusion group
    /// `group` (see [`Schedule::fused`]) back to back per element:
    /// `L_a(e); L_b(e); …` — intermediates stay register/scratch-resident
    /// instead of round-tripping through the dat between loops.
    Fused { group: u32, start: u32, end: u32 },
    /// The list form of [`Piece::Fused`].
    FusedList { group: u32, iters: Vec<u32> },
}

impl Piece {
    /// Number of elements the piece covers (fused pieces count each
    /// element once even though every group loop runs on it).
    pub fn len(&self) -> usize {
        match self {
            Piece::Range { start, end, .. } | Piece::Fused { start, end, .. } => {
                (*end as usize).saturating_sub(*start as usize)
            }
            Piece::List { iters, .. } | Piece::FusedList { iters, .. } => iters.len(),
        }
    }

    /// Whether the piece covers no iterations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which single chain loop the piece belongs to (`None` for fused
    /// pieces, which belong to every loop of their group).
    pub fn loop_idx(&self) -> Option<usize> {
        match self {
            Piece::Range { loop_idx, .. } | Piece::List { loop_idx, .. } => {
                Some(*loop_idx as usize)
            }
            Piece::Fused { .. } | Piece::FusedList { .. } => None,
        }
    }

    /// Which fusion group a fused piece executes (`None` for plain
    /// single-loop pieces).
    pub fn group_idx(&self) -> Option<usize> {
        match self {
            Piece::Fused { group, .. } | Piece::FusedList { group, .. } => Some(*group as usize),
            Piece::Range { .. } | Piece::List { .. } => None,
        }
    }
}

/// The unit of work one worker executes without interruption: pieces in
/// order (for tiles, the tile's slice of `L_0`, then of `L_1`, …).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Chunk {
    pub pieces: Vec<Piece>,
}

impl Chunk {
    /// Total iterations across all pieces.
    pub fn iters(&self) -> usize {
        self.pieces.iter().map(Piece::len).sum()
    }
}

/// One barrier-delimited group of mutually conflict-free chunks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Level {
    pub chunks: Vec<Chunk>,
}

/// Which lowering produced a schedule — carried for tracing/diagnostics,
/// never consulted by the executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// A plain range or index list: one level, one chunk.
    Direct,
    /// Lowered from a (block) coloring: level per color.
    Colored { block_size: usize },
    /// Lowered from a leveled tile plan: level per tile-conflict level.
    Tiled { n_tiles: usize },
}

/// One elided (scratch-resident) intermediate of a fusion group: inside
/// fused pieces the bound arguments listed in `binds` are repointed at a
/// fixed per-worker scratch slot instead of the dat's memory, so the
/// produce→consume round-trip through the dat never happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScratchBind {
    /// Components per element of the elided dat.
    pub dim: u32,
    /// `f64` offset of this dat's slot in the worker scratch pool.
    pub offset: u32,
    /// Group-member position of the producing (direct-Write) loop.
    pub producer: u32,
    /// `(group-member position, arg index)` pairs to repoint at the
    /// scratch slot — the producer's write args and every consumer's
    /// read args.
    pub binds: Vec<(u32, u32)>,
}

impl ScratchBind {
    /// Group-member positions that consume (read) the scratch slot.
    pub fn consumers(&self) -> impl Iterator<Item = u32> + '_ {
        let p = self.producer;
        self.binds
            .iter()
            .map(|&(m, _)| m)
            .filter(move |&m| m != p)
    }
}

/// Metadata for one fused group of a schedule: which chain loops a
/// [`Piece::Fused`] interleaves, and which intermediates it elides into
/// the per-worker scratch pool.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FusedGroup {
    /// Chain-loop indices executed per element, in program order.
    pub loops: Vec<u32>,
    /// Elided intermediates (empty = fuse without elision: every dat is
    /// still written through to memory).
    pub scratch: Vec<ScratchBind>,
}

/// An executable schedule over an `n_loops`-long chain (1 for a single
/// loop). See the module docs for the level/chunk semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Number of chain loops the pieces index into.
    pub n_loops: usize,
    /// Provenance tag for traces.
    pub kind: ScheduleKind,
    /// Barrier-ordered levels.
    pub levels: Vec<Level>,
    /// Fusion groups referenced by [`Piece::Fused`] / [`Piece::FusedList`]
    /// (empty for unfused schedules).
    pub fused: Vec<FusedGroup>,
}

impl Schedule {
    /// A single loop over `[start, end)`: one level, one chunk.
    pub fn range(start: usize, end: usize) -> Schedule {
        Schedule {
            n_loops: 1,
            kind: ScheduleKind::Direct,
            levels: vec![Level {
                chunks: vec![Chunk {
                    pieces: vec![Piece::Range {
                        loop_idx: 0,
                        start: start as u32,
                        end: end.max(start) as u32,
                    }],
                }],
            }],
            fused: Vec::new(),
        }
    }

    /// A single loop over an explicit iteration list: one level, one
    /// chunk.
    pub fn list(iters: Vec<u32>) -> Schedule {
        Schedule {
            n_loops: 1,
            kind: ScheduleKind::Direct,
            levels: vec![Level {
                chunks: vec![Chunk {
                    pieces: vec![Piece::List {
                        loop_idx: 0,
                        iters,
                    }],
                }],
            }],
            fused: Vec::new(),
        }
    }

    /// Lower a greedy per-iteration [`Coloring`]: one level per color,
    /// each color's iterations split into list chunks of at most
    /// `chunk_size`. Greedy colorings reorder conflicting iterations
    /// across colors, so this lowering is race-free but **not** bitwise
    /// order-preserving (see [`Schedule::from_block_coloring`] for the
    /// lowering that is).
    pub fn from_coloring(coloring: &Coloring, chunk_size: usize) -> Schedule {
        let chunk_size = chunk_size.max(1);
        let levels = coloring
            .by_color
            .iter()
            .map(|bucket| Level {
                chunks: bucket
                    .chunks(chunk_size)
                    .map(|piece| Chunk {
                        pieces: vec![Piece::List {
                            loop_idx: 0,
                            iters: piece.to_vec(),
                        }],
                    })
                    .collect(),
            })
            .collect();
        Schedule {
            n_loops: 1,
            kind: ScheduleKind::Colored { block_size: 1 },
            levels,
            fused: Vec::new(),
        }
    }

    /// Lower a levelized order-preserving [`BlockColoring`]: one level
    /// per color, one chunk per block (a single range piece). Inherits
    /// the coloring's bitwise-identity contract.
    pub fn from_block_coloring(bc: &BlockColoring) -> Schedule {
        let levels = bc
            .by_color
            .iter()
            .map(|bucket| Level {
                chunks: bucket
                    .iter()
                    .map(|&b| {
                        let (s, e) = bc.block_range(b as usize);
                        Chunk {
                            pieces: vec![Piece::Range {
                                loop_idx: 0,
                                start: s as u32,
                                end: e as u32,
                            }],
                        }
                    })
                    .collect(),
            })
            .collect();
        Schedule {
            n_loops: 1,
            kind: ScheduleKind::Colored {
                block_size: bc.block_size,
            },
            levels,
            fused: Vec::new(),
        }
    }

    /// Lower a leveled [`TilePlan`] over an `n_loops`-long chain: one
    /// level per tile-conflict level, one chunk per tile holding the
    /// tile's slice of every loop in program order (empty slices are
    /// skipped). Within a level, tile ids ascend; conflicting tiles sit
    /// on strictly ascending levels in tile order, so level-order
    /// execution is bitwise identical to the ascending-tile sequential
    /// walk.
    pub fn from_tile_plan(plan: &TilePlan) -> Schedule {
        let n_loops = plan.iters.len();
        let levels = plan
            .by_level
            .iter()
            .map(|tiles| Level {
                chunks: tiles.iter().map(|&t| Self::tile_chunk(plan, t)).collect(),
            })
            .collect();
        Schedule {
            n_loops,
            kind: ScheduleKind::Tiled {
                n_tiles: plan.n_tiles,
            },
            levels,
            fused: Vec::new(),
        }
    }

    /// Lower only the tiles with `keep[t] == true` from a leveled
    /// [`TilePlan`], preserving the plan's level structure (levels left
    /// with no kept tiles are dropped). Used by the overlap executor to
    /// split one plan into a core schedule (runs while the exchange is
    /// in flight) and a post schedule (runs after the wait); level order
    /// within each half is exactly the full plan's, so running one half
    /// and then the other replays the full plan whenever the split
    /// itself is order-safe (see `tiling::overlap_core_tiles`).
    pub fn from_tile_plan_subset(plan: &TilePlan, keep: &[bool]) -> Schedule {
        let n_loops = plan.iters.len();
        let levels: Vec<Level> = plan
            .by_level
            .iter()
            .map(|tiles| Level {
                chunks: tiles
                    .iter()
                    .filter(|&&t| keep[t as usize])
                    .map(|&t| Self::tile_chunk(plan, t))
                    .collect(),
            })
            .filter(|l| !l.chunks.is_empty())
            .collect();
        Schedule {
            n_loops,
            kind: ScheduleKind::Tiled {
                n_tiles: plan.n_tiles,
            },
            levels,
            fused: Vec::new(),
        }
    }

    /// One tile as an executable chunk: its slice of every loop in
    /// program order, empty slices skipped.
    fn tile_chunk(plan: &TilePlan, t: u32) -> Chunk {
        Chunk {
            pieces: (0..plan.iters.len())
                .filter(|&j| !plan.iters[j][t as usize].is_empty())
                .map(|j| Piece::List {
                    loop_idx: j as u32,
                    iters: plan.iters[j][t as usize].clone(),
                })
                .collect(),
        }
    }

    /// Number of barrier-delimited levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total chunk count across all levels.
    pub fn n_chunks(&self) -> usize {
        self.levels.iter().map(|l| l.chunks.len()).sum()
    }

    /// Widest level (the available parallelism).
    pub fn max_level_chunks(&self) -> usize {
        self.levels.iter().map(|l| l.chunks.len()).max().unwrap_or(0)
    }

    /// Total iterations scheduled for chain loop `loop_idx` (fused
    /// pieces count for every member loop they interleave).
    pub fn loop_iters(&self, loop_idx: usize) -> usize {
        self.levels
            .iter()
            .flat_map(|l| &l.chunks)
            .flat_map(|c| &c.pieces)
            .filter(|p| match p.loop_idx() {
                Some(j) => j == loop_idx,
                None => self.fused[p.group_idx().expect("fused piece")]
                    .loops
                    .contains(&(loop_idx as u32)),
            })
            .map(Piece::len)
            .sum()
    }

    /// Whether running the schedule on threads can use more than one
    /// worker at a time.
    pub fn has_parallelism(&self) -> bool {
        self.max_level_chunks() > 1
    }

    /// Total fused pieces across all levels.
    pub fn n_fused_pieces(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| &l.chunks)
            .flat_map(|c| &c.pieces)
            .filter(|p| p.group_idx().is_some())
            .count()
    }

    /// Length (in `f64`s) of the per-worker scratch pool the fused
    /// groups' elided intermediates require.
    pub fn scratch_pool_len(&self) -> usize {
        self.fused
            .iter()
            .flat_map(|g| &g.scratch)
            .map(|s| (s.offset + s.dim) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Fusion post-pass: within every chunk, replace each window of
    /// adjacent pieces that covers *all* loops of one fusion group — in
    /// member order, with identical element coverage — by a single
    /// [`Piece::Fused`] / [`Piece::FusedList`]. Applies unchanged to any
    /// lowering (range, coloring, tiling); windows that don't line up
    /// (e.g. a tile whose per-loop slices differ) are left unfused, which
    /// stays correct because fused pieces preserve the per-location
    /// update order of the unfused walk.
    ///
    /// `group_of[j]` names loop `j`'s fusion group, if any.
    pub fn fuse(mut self, groups: Vec<FusedGroup>, group_of: &[Option<usize>]) -> Schedule {
        debug_assert_eq!(group_of.len(), self.n_loops);
        for level in &mut self.levels {
            for chunk in &mut level.chunks {
                chunk.pieces = fuse_pieces(std::mem::take(&mut chunk.pieces), &groups, group_of);
            }
        }
        self.fused = groups;
        self
    }

    /// Direct (single-chunk) lowering of a whole chain with fusion: for
    /// each fusion group one fused range over the members' common prefix
    /// `[0, min end)` followed by per-member tail ranges (members whose
    /// extent-driven end exceeds the common prefix), in member order;
    /// unfused loops as plain ranges. One level, one chunk — the
    /// sequential reference shape of a fused chain.
    pub fn chain_ranges_fused(
        ends: &[usize],
        groups: Vec<FusedGroup>,
        group_of: &[Option<usize>],
    ) -> Schedule {
        let mut pieces = Vec::new();
        let mut j = 0usize;
        while j < ends.len() {
            match group_of[j] {
                Some(g) if groups[g].loops.first() == Some(&(j as u32)) => {
                    let members = &groups[g].loops;
                    let common = members
                        .iter()
                        .map(|&m| ends[m as usize])
                        .min()
                        .unwrap_or(0);
                    pieces.push(Piece::Fused {
                        group: g as u32,
                        start: 0,
                        end: common as u32,
                    });
                    for &m in members {
                        if ends[m as usize] > common {
                            pieces.push(Piece::Range {
                                loop_idx: m,
                                start: common as u32,
                                end: ends[m as usize] as u32,
                            });
                        }
                    }
                    j += members.len();
                }
                _ => {
                    pieces.push(Piece::Range {
                        loop_idx: j as u32,
                        start: 0,
                        end: ends[j] as u32,
                    });
                    j += 1;
                }
            }
        }
        Schedule {
            n_loops: ends.len(),
            kind: ScheduleKind::Direct,
            levels: vec![Level {
                chunks: vec![Chunk { pieces }],
            }],
            fused: groups,
        }
    }
}

/// The chunk-local fusion window matcher behind [`Schedule::fuse`].
fn fuse_pieces(
    pieces: Vec<Piece>,
    groups: &[FusedGroup],
    group_of: &[Option<usize>],
) -> Vec<Piece> {
    let mut out = Vec::with_capacity(pieces.len());
    let mut i = 0usize;
    'outer: while i < pieces.len() {
        if let Some(j) = pieces[i].loop_idx() {
            if let Some(g) = group_of.get(j).copied().flatten() {
                let members = &groups[g].loops;
                // The window must start at the group's first member and
                // cover every member with identical coverage.
                if members.first() == Some(&(j as u32)) && i + members.len() <= pieces.len() {
                    let window = &pieces[i..i + members.len()];
                    let aligned = window.iter().zip(members.iter()).all(|(p, &m)| {
                        p.loop_idx() == Some(m as usize) && same_coverage(&window[0], p)
                    });
                    if aligned {
                        out.push(match &window[0] {
                            Piece::Range { start, end, .. } => Piece::Fused {
                                group: g as u32,
                                start: *start,
                                end: *end,
                            },
                            Piece::List { iters, .. } => Piece::FusedList {
                                group: g as u32,
                                iters: iters.clone(),
                            },
                            _ => unreachable!("window starts at a plain piece"),
                        });
                        i += members.len();
                        continue 'outer;
                    }
                }
            }
        }
        out.push(pieces[i].clone());
        i += 1;
    }
    out
}

/// Identical element coverage between two plain pieces.
fn same_coverage(a: &Piece, b: &Piece) -> bool {
    match (a, b) {
        (
            Piece::Range { start: s1, end: e1, .. },
            Piece::Range { start: s2, end: e2, .. },
        ) => s1 == s2 && e1 == e2,
        (Piece::List { iters: i1, .. }, Piece::List { iters: i2, .. }) => i1 == i2,
        _ => false,
    }
}

/// Whether the schedules keep every *consumer* access of each elided
/// intermediate inside a fused piece of its group — the structural
/// precondition for scratch elision. A standalone (unfused) piece of a
/// consumer loop would read the scratch slot without its producer having
/// filled it for that element, so elision must be dropped (write-through)
/// whenever any lowering leaves one behind. Standalone *producer* pieces
/// (extent tails) are harmless: their scratch writes are dead by the
/// chain-local-intermediate contract.
pub fn elision_valid(scheds: &[&Schedule], groups: &[FusedGroup], group_of: &[Option<usize>]) -> bool {
    // Loops that consume some scratch slot of their group.
    let mut consumer_loops: Vec<usize> = Vec::new();
    for g in groups {
        for s in &g.scratch {
            for m in s.consumers() {
                let j = g.loops[m as usize] as usize;
                if !consumer_loops.contains(&j) {
                    consumer_loops.push(j);
                }
            }
        }
    }
    if consumer_loops.is_empty() {
        return true;
    }
    for sched in scheds {
        for piece in sched
            .levels
            .iter()
            .flat_map(|l| &l.chunks)
            .flat_map(|c| &c.pieces)
        {
            if let Some(j) = piece.loop_idx() {
                if !piece.is_empty() && consumer_loops.contains(&j) && group_of[j].is_some() {
                    return false;
                }
            }
        }
    }
    true
}

/// One resolved kernel argument: base pointer, element stride, access
/// mode, and how iteration index maps to element index.
#[derive(Debug, Clone, Copy)]
pub struct BoundArg {
    /// Base of the dat / gbl buffer.
    pub base: *mut f64,
    /// Components per element (gbl: buffer length).
    pub dim: u32,
    pub mode: AccessMode,
    /// `Some((map base, arity, idx))` for indirect args.
    pub map: Option<(*const u32, usize, usize)>,
    /// Direct args index by iteration; gbl args by zero.
    pub direct: bool,
}

/// A loop with every argument resolved to raw pointers — the single
/// kernel-invocation path all executors share.
///
/// # Safety contract
/// The pointers must reference buffers that outlive the `BoundLoop` and
/// are not reallocated while it is used. Concurrent execution is sound
/// only under a schedule whose same-level chunks modify disjoint
/// elements; all data access is value-based through [`Args`], so no
/// references are formed.
pub struct BoundLoop {
    pub kernel: KernelFn,
    pub args: Vec<BoundArg>,
}

// SAFETY: see the struct-level contract — callers only share a BoundLoop
// across threads under a conflict-free-by-construction schedule.
unsafe impl Sync for BoundLoop {}
unsafe impl Send for BoundLoop {}

impl BoundLoop {
    /// Resolve `spec` against a global domain. `gbl_bufs` (one buffer
    /// per [`crate::access::GblDecl`], preallocated by the caller) backs
    /// the loop's global arguments; it must not be moved or resized
    /// while the returned `BoundLoop` is live.
    pub fn bind(dom: &mut Domain, spec: &LoopSpec, gbl_bufs: &mut [Vec<f64>]) -> BoundLoop {
        let mut args = Vec::with_capacity(spec.args.len());
        for arg in &spec.args {
            match arg {
                Arg::Dat { dat, map, mode } => {
                    let dim = dom.dat(*dat).dim as u32;
                    let base = dom.dat_mut(*dat).data.as_mut_ptr();
                    let map_info = map.map(|(m, idx)| {
                        let md = dom.map(m);
                        (md.values.as_ptr(), md.arity, idx as usize)
                    });
                    args.push(BoundArg {
                        base,
                        dim,
                        mode: *mode,
                        map: map_info,
                        direct: map.is_none(),
                    });
                }
                Arg::Gbl { idx, mode } => {
                    let buf = &mut gbl_bufs[*idx as usize];
                    args.push(BoundArg {
                        base: buf.as_mut_ptr(),
                        dim: buf.len() as u32,
                        mode: *mode,
                        map: None,
                        direct: false,
                    });
                }
            }
        }
        BoundLoop {
            kernel: spec.kernel,
            args,
        }
    }

    /// Assemble from already-resolved parts — the distributed runtime
    /// resolves against its rank-local dat buffers and localized maps.
    pub fn from_parts(kernel: KernelFn, args: Vec<BoundArg>) -> BoundLoop {
        BoundLoop { kernel, args }
    }

    /// Fresh slot buffer for one worker.
    pub fn slots(&self) -> Vec<ArgSlot> {
        slots_for(&self.args)
    }

    /// Run one iteration: point every slot at its element, call the
    /// kernel.
    #[inline]
    pub fn run_iter(&self, slots: &mut [ArgSlot], e: usize) {
        run_elem(self.kernel, &self.args, slots, e);
    }

    /// Run iterations `[start, end)` on the calling thread.
    pub fn run_range(&self, start: usize, end: usize) {
        let mut slots = self.slots();
        for e in start..end {
            run_elem(self.kernel, &self.args, &mut slots, e);
        }
    }

    /// Run an explicit iteration list on the calling thread.
    pub fn run_list(&self, iters: &[u32]) {
        let mut slots = self.slots();
        for &e in iters {
            run_elem(self.kernel, &self.args, &mut slots, e as usize);
        }
    }
}

/// Materialize a fresh slot buffer from resolved args — the single
/// slot-materialization point every execution path shares (plain range,
/// list, fused pieces, and the reusable [`SchedCtx`] buffers).
pub fn slots_for(args: &[BoundArg]) -> Vec<ArgSlot> {
    args.iter()
        .map(|r| ArgSlot {
            ptr: r.base,
            dim: r.dim,
            mode: r.mode,
        })
        .collect()
}

/// One kernel invocation at element `e`: point every slot at its
/// element per the bound args, call the kernel. The only place iteration
/// indices are resolved to data pointers.
#[inline]
pub fn run_elem(kernel: KernelFn, args: &[BoundArg], slots: &mut [ArgSlot], e: usize) {
    for (slot, r) in slots.iter_mut().zip(args.iter()) {
        let elem = match (&r.map, r.direct) {
            (Some((mbase, arity, idx)), _) => {
                // SAFETY: map values validated at declaration; the
                // schedule only covers iterations whose entries are
                // within the built halo depth.
                let v = unsafe { *mbase.add(e * arity + idx) };
                debug_assert_ne!(v, u32::MAX, "map entry beyond built halo depth dereferenced");
                v as usize
            }
            (None, true) => e,
            (None, false) => 0, // gbl / scratch slot
        };
        // SAFETY: in-bounds per dat declaration; concurrent writers
        // are excluded by the schedule's conflict-freedom.
        slot.ptr = unsafe { r.base.add(elem * r.dim as usize) };
    }
    (kernel)(&Args::new(slots));
}

/// Reusable per-worker execution state: one slot buffer per chain loop,
/// the scratch pool backing elided intermediates, and per-loop bound-arg
/// overrides that point scratch-bound arguments into that pool. Prepared
/// once per schedule execution and reused across invocations — at steady
/// state (same chain, same shapes) [`SchedCtx::prepare`] performs **zero
/// heap allocations** (the `*_into` reuse pattern); [`SchedCtx::allocs`]
/// counts the growths that did happen.
#[derive(Default)]
pub struct SchedCtx {
    /// Per chain loop: reusable slot buffer.
    slots: Vec<Vec<ArgSlot>>,
    /// Scratch pool backing elided per-element intermediates.
    pool: Vec<f64>,
    /// Per chain loop: bound args with scratch rebinds applied (empty =
    /// the loop has no elided args; use the `BoundLoop`'s own).
    overrides: Vec<Vec<BoundArg>>,
    /// Heap (re)allocations performed by `prepare` so far.
    allocs: u64,
}

// SAFETY: the raw pointers inside `overrides` reference either the
// caller's bound buffers (same contract as `BoundLoop`) or this ctx's
// own `pool`; a ctx is only ever used by one worker at a time.
unsafe impl Send for SchedCtx {}

impl SchedCtx {
    /// An empty context; buffers grow on first `prepare`.
    pub fn new() -> SchedCtx {
        SchedCtx::default()
    }

    /// Heap allocations `prepare` has performed over this ctx's lifetime
    /// — constant once warm.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Size the context for `sched` over `bound`, rebuilding the scratch
    /// pool and the per-loop arg overrides. Buffer capacities are kept
    /// across calls, so repeat preparations for same-shaped schedules
    /// allocate nothing.
    pub fn prepare(&mut self, bound: &[BoundLoop], sched: &Schedule) {
        let track = |allocs: &mut u64, grew: bool| {
            if grew {
                *allocs += 1;
            }
        };

        // Per-loop slot buffers.
        let cap0 = self.slots.capacity();
        self.slots.resize_with(bound.len(), Vec::new);
        self.slots.truncate(bound.len());
        track(&mut self.allocs, self.slots.capacity() != cap0);
        for (buf, bl) in self.slots.iter_mut().zip(bound.iter()) {
            let cap = buf.capacity();
            buf.clear();
            buf.extend(slots_for(&bl.args));
            track(&mut self.allocs, buf.capacity() != cap);
        }

        // Scratch pool.
        let cap0 = self.pool.capacity();
        self.pool.clear();
        self.pool.resize(sched.scratch_pool_len(), 0.0);
        track(&mut self.allocs, self.pool.capacity() != cap0);

        // Arg overrides: loops whose args are rebound into the pool.
        let cap0 = self.overrides.capacity();
        self.overrides.resize_with(bound.len(), Vec::new);
        self.overrides.truncate(bound.len());
        track(&mut self.allocs, self.overrides.capacity() != cap0);
        for o in &mut self.overrides {
            o.clear();
        }
        let pool_base = self.pool.as_mut_ptr();
        for group in &sched.fused {
            for s in &group.scratch {
                // SAFETY: offset + dim ≤ pool len by `scratch_pool_len`.
                let slot_ptr = unsafe { pool_base.add(s.offset as usize) };
                for &(member, arg) in &s.binds {
                    let j = group.loops[member as usize] as usize;
                    let ov = &mut self.overrides[j];
                    if ov.is_empty() {
                        let cap = ov.capacity();
                        ov.extend(bound[j].args.iter().copied());
                        track(&mut self.allocs, ov.capacity() != cap);
                    }
                    let mode = ov[arg as usize].mode;
                    ov[arg as usize] = BoundArg {
                        base: slot_ptr,
                        dim: s.dim,
                        mode,
                        map: None,
                        direct: false,
                    };
                }
            }
        }
        // Slot buffers of overridden loops must reflect the override
        // (dim of the scratch slot).
        for (j, ov) in self.overrides.iter().enumerate() {
            if !ov.is_empty() {
                let buf = &mut self.slots[j];
                buf.clear();
                buf.extend(slots_for(ov));
            }
        }
    }
}

/// Execute one chunk: its pieces in order, on the calling thread.
/// `bound[j]` must be the resolution of chain loop `j`; `ctx` carries
/// this worker's slot buffers, scratch pool and arg overrides (prepared
/// for `sched`).
pub fn run_chunk(bound: &[BoundLoop], sched: &Schedule, chunk: &Chunk, ctx: &mut SchedCtx) {
    let SchedCtx {
        slots, overrides, ..
    } = ctx;
    let args_of = |j: usize| -> &[BoundArg] {
        if overrides[j].is_empty() {
            &bound[j].args
        } else {
            &overrides[j]
        }
    };
    for piece in &chunk.pieces {
        match piece {
            Piece::Range {
                loop_idx,
                start,
                end,
            } => {
                let j = *loop_idx as usize;
                let args = args_of(j);
                let slots = &mut slots[j];
                for e in *start as usize..*end as usize {
                    run_elem(bound[j].kernel, args, slots, e);
                }
            }
            Piece::List { loop_idx, iters } => {
                let j = *loop_idx as usize;
                let args = args_of(j);
                let slots = &mut slots[j];
                for &e in iters {
                    run_elem(bound[j].kernel, args, slots, e as usize);
                }
            }
            Piece::Fused { group, start, end } => {
                let members = &sched.fused[*group as usize].loops;
                for e in *start as usize..*end as usize {
                    for &m in members {
                        let j = m as usize;
                        run_elem(bound[j].kernel, args_of(j), &mut slots[j], e);
                    }
                }
            }
            Piece::FusedList { group, iters } => {
                let members = &sched.fused[*group as usize].loops;
                for &e in iters {
                    for &m in members {
                        let j = m as usize;
                        run_elem(bound[j].kernel, args_of(j), &mut slots[j], e as usize);
                    }
                }
            }
        }
    }
}

/// Execute a schedule sequentially: levels in order, chunks in order.
/// This is the reference semantics every threaded execution must match.
pub fn run_schedule(bound: &[BoundLoop], sched: &Schedule) {
    let mut ctx = SchedCtx::new();
    run_schedule_ctx(bound, sched, &mut ctx);
}

/// [`run_schedule`] with a caller-provided (reusable) worker context —
/// the zero-allocation steady-state entry point.
pub fn run_schedule_ctx(bound: &[BoundLoop], sched: &Schedule, ctx: &mut SchedCtx) {
    debug_assert_eq!(bound.len(), sched.n_loops);
    ctx.prepare(bound, sched);
    for level in &sched.levels {
        for chunk in &level.chunks {
            run_chunk(bound, sched, chunk, ctx);
        }
    }
}

/// Execute a schedule with `n_threads` scoped OS threads per level
/// (barrier between levels). The reference threaded executor for
/// core-level tests and single-domain callers; the runtime crate runs
/// the same schedules on its per-rank pool.
pub fn run_schedule_threads(bound: &[BoundLoop], sched: &Schedule, n_threads: usize) {
    assert!(n_threads >= 1);
    debug_assert_eq!(bound.len(), sched.n_loops);
    if n_threads == 1 {
        return run_schedule(bound, sched);
    }
    for level in &sched.levels {
        let per = level.chunks.len().div_ceil(n_threads).max(1);
        std::thread::scope(|scope| {
            for group in level.chunks.chunks(per) {
                scope.spawn(move || {
                    let mut ctx = SchedCtx::new();
                    ctx.prepare(bound, sched);
                    for chunk in group {
                        run_chunk(bound, sched, chunk, &mut ctx);
                    }
                });
            }
        });
    }
}

/// Execute `spec` under `sched` on the global domain, sequentially.
pub fn run_loop_schedule(dom: &mut Domain, spec: &LoopSpec, sched: &Schedule) -> crate::seq::LoopResult {
    let mut gbl_bufs: Vec<Vec<f64>> = spec.gbls.iter().map(|g| g.init.clone()).collect();
    let bound = BoundLoop::bind(dom, spec, &mut gbl_bufs);
    run_schedule(std::slice::from_ref(&bound), sched);
    crate::seq::LoopResult { gbls: gbl_bufs }
}

/// Execute `spec` under `sched` on the global domain with `n_threads`
/// workers.
///
/// # Panics
/// Panics if the loop carries global reduction arguments — a reduction's
/// accumulation order is thread-schedule dependent, so such loops stay
/// sequential.
pub fn run_loop_schedule_threads(
    dom: &mut Domain,
    spec: &LoopSpec,
    sched: &Schedule,
    n_threads: usize,
) {
    assert!(
        !spec.has_reduction(),
        "threaded execution does not support global reductions"
    );
    let mut gbl_bufs: Vec<Vec<f64>> = spec.gbls.iter().map(|g| g.init.clone()).collect();
    let bound = BoundLoop::bind(dom, spec, &mut gbl_bufs);
    run_schedule_threads(std::slice::from_ref(&bound), sched, n_threads);
}

/// Bind every loop of `chain` against the global domain. Returns the
/// bound loops plus the per-loop global buffers backing them (which must
/// stay alive and unmoved while the bounds are used).
pub fn bind_chain(
    dom: &mut Domain,
    chain: &crate::ChainSpec,
) -> (Vec<BoundLoop>, Vec<Vec<Vec<f64>>>) {
    let mut gbls: Vec<Vec<Vec<f64>>> = chain
        .loops
        .iter()
        .map(|s| s.gbls.iter().map(|g| g.init.clone()).collect())
        .collect();
    let mut bound = Vec::with_capacity(chain.len());
    for (spec, bufs) in chain.loops.iter().zip(gbls.iter_mut()) {
        bound.push(BoundLoop::bind(dom, spec, bufs));
    }
    (bound, gbls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMode, Arg};
    use crate::loops::LoopSpec;

    fn bump(args: &Args<'_>) {
        args.set(0, 0, args.get(0, 0) + 1.0);
    }

    fn fixture(n: usize) -> (Domain, LoopSpec, crate::DatId) {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n);
        let x = dom.decl_dat_zeros("x", nodes, 1);
        let spec = LoopSpec::new("bump", nodes, vec![Arg::dat_direct(x, AccessMode::Rw)], bump);
        (dom, spec, x)
    }

    #[test]
    fn range_schedule_shape() {
        let s = Schedule::range(3, 11);
        assert_eq!(s.n_levels(), 1);
        assert_eq!(s.n_chunks(), 1);
        assert_eq!(s.loop_iters(0), 8);
        assert!(!s.has_parallelism());
    }

    #[test]
    fn range_and_list_lowerings_execute() {
        let (mut dom, spec, x) = fixture(6);
        run_loop_schedule(&mut dom, &spec, &Schedule::range(1, 4));
        run_loop_schedule(&mut dom, &spec, &Schedule::list(vec![0, 3, 5]));
        assert_eq!(dom.dat(x).data, vec![1.0, 1.0, 1.0, 2.0, 0.0, 1.0]);
    }

    #[test]
    fn threaded_schedule_matches_sequential() {
        // Two disjoint chunks on one level: safe to run concurrently.
        let sched = Schedule {
            n_loops: 1,
            kind: ScheduleKind::Direct,
            levels: vec![Level {
                chunks: vec![
                    Chunk {
                        pieces: vec![Piece::Range {
                            loop_idx: 0,
                            start: 0,
                            end: 50,
                        }],
                    },
                    Chunk {
                        pieces: vec![Piece::Range {
                            loop_idx: 0,
                            start: 50,
                            end: 100,
                        }],
                    },
                ],
            }],
            fused: Vec::new(),
        };
        let (mut a, spec, x) = fixture(100);
        let (mut b, _, _) = fixture(100);
        run_loop_schedule(&mut a, &spec, &sched);
        run_loop_schedule_threads(&mut b, &spec, &sched, 4);
        assert_eq!(a.dat(x).data, b.dat(x).data);
    }

    fn pair_group(scratch: Vec<ScratchBind>) -> (Vec<FusedGroup>, Vec<Option<usize>>) {
        (
            vec![FusedGroup {
                loops: vec![1, 2],
                scratch,
            }],
            vec![None, Some(0), Some(0)],
        )
    }

    /// The direct fused lowering: solo loops as plain ranges, one fused
    /// range over the group's common prefix, extent tails per member.
    #[test]
    fn chain_ranges_fused_shape_and_iters() {
        let (groups, group_of) = pair_group(Vec::new());
        let s = Schedule::chain_ranges_fused(&[7, 5, 9], groups, &group_of);
        let pieces = &s.levels[0].chunks[0].pieces;
        assert_eq!(pieces.len(), 3);
        assert!(matches!(
            pieces[0],
            Piece::Range { loop_idx: 0, start: 0, end: 7 }
        ));
        assert!(matches!(
            pieces[1],
            Piece::Fused { group: 0, start: 0, end: 5 }
        ));
        assert!(matches!(
            pieces[2],
            Piece::Range { loop_idx: 2, start: 5, end: 9 }
        ));
        assert_eq!(s.n_fused_pieces(), 1);
        // Fused pieces count for every member loop they interleave.
        assert_eq!(s.loop_iters(1), 5);
        assert_eq!(s.loop_iters(2), 9);
    }

    /// The post-pass window matcher fuses only aligned windows: chunks
    /// whose member pieces differ in coverage are left unfused (and stay
    /// correct via the per-location order argument).
    #[test]
    fn fuse_post_pass_requires_aligned_windows() {
        let raw = |l: u32, s: u32, e: u32| Piece::Range {
            loop_idx: l,
            start: s,
            end: e,
        };
        let sched = Schedule {
            n_loops: 2,
            kind: ScheduleKind::Direct,
            levels: vec![Level {
                chunks: vec![
                    Chunk {
                        pieces: vec![raw(0, 0, 4), raw(1, 0, 4)],
                    },
                    Chunk {
                        pieces: vec![raw(0, 4, 8), raw(1, 4, 6)],
                    },
                ],
            }],
            fused: Vec::new(),
        };
        let groups = vec![FusedGroup {
            loops: vec![0, 1],
            scratch: Vec::new(),
        }];
        let s = sched.fuse(groups, &[Some(0), Some(0)]);
        assert_eq!(s.n_fused_pieces(), 1);
        assert!(matches!(
            s.levels[0].chunks[0].pieces[0],
            Piece::Fused { group: 0, start: 0, end: 4 }
        ));
        // Misaligned window untouched.
        assert_eq!(s.levels[0].chunks[1].pieces.len(), 2);
    }

    /// Elision survives standalone *producer* tails (dead scratch
    /// writes) but not standalone *consumer* pieces, which would read a
    /// slot their element's producer never filled.
    #[test]
    fn elision_validity_rejects_standalone_consumers() {
        let bind = ScratchBind {
            dim: 2,
            offset: 0,
            producer: 0,
            binds: vec![(0, 1), (1, 0)],
        };
        assert_eq!(bind.consumers().collect::<Vec<_>>(), vec![1]);

        let (groups, group_of) = pair_group(vec![bind]);
        let aligned = Schedule::chain_ranges_fused(&[4, 4, 4], groups.clone(), &group_of);
        assert!(elision_valid(&[&aligned], &aligned.fused, &group_of));
        assert_eq!(aligned.scratch_pool_len(), 2);

        // Consumer extent tail: loop 2 runs [4, 6) standalone.
        let ctail = Schedule::chain_ranges_fused(&[4, 4, 6], groups.clone(), &group_of);
        assert!(!elision_valid(&[&ctail], &ctail.fused, &group_of));

        // Producer extent tail: loop 1 runs [4, 6) standalone — harmless.
        let ptail = Schedule::chain_ranges_fused(&[4, 6, 4], groups, &group_of);
        assert!(elision_valid(&[&ptail], &ptail.fused, &group_of));
    }
}
