//! The unified `Schedule` execution IR.
//!
//! Every way this crate runs a loop or a loop-chain — a plain sequential
//! range, a colored-blocked threaded loop, a sparse-tiled chain — is the
//! same thing at heart: an ordered list of *levels* separated by
//! synchronization barriers, each level holding iteration *chunks* that
//! are conflict-free against one another. This module makes that shape a
//! first-class value:
//!
//! * [`Piece`] — a contiguous iteration range or an explicit index list
//!   of one loop of the chain;
//! * [`Chunk`] — an ordered list of pieces executed sequentially by one
//!   worker (a colored block; a tile's slice of every loop);
//! * [`Schedule`] — levels of chunks. Chunks within a level may run
//!   concurrently; levels execute in order with a barrier between them.
//!
//! Lowerings build schedules from each scheduling strategy
//! ([`Schedule::range`], [`Schedule::from_coloring`],
//! [`Schedule::from_block_coloring`], [`Schedule::from_tile_plan`]), and
//! a single pair of executors runs them: [`run_schedule`] (sequential,
//! one thread, level and chunk order) and [`run_schedule_threads`]
//! (scoped OS threads per level — the reference threaded executor; the
//! runtime crate's pool executes the same schedules per rank).
//!
//! **Determinism contract.** When the lowering guarantees that (a)
//! same-level chunks touch disjoint modified elements and (b) every
//! conflicting chunk pair is ordered by level in ascending iteration
//! order — as the levelized block coloring and the leveled tile plan do —
//! the per-element update sequence under any thread count equals the
//! sequential one, so results are **bitwise identical** to
//! [`crate::seq::run_loop`] / the sequential tiled walk.
//!
//! [`BoundLoop`] is the one argument-resolution and kernel-invocation
//! path shared by every executor: base pointers resolved once per loop,
//! value-based slot access per iteration. The distributed runtime binds
//! its rank-local buffers through [`BoundLoop::from_parts`] and reuses
//! the same chunk walker, so there is exactly one execution loop in the
//! codebase regardless of back-end.

use crate::access::{AccessMode, Arg};
use crate::coloring::Coloring;
use crate::domain::Domain;
use crate::kernel::{Args, ArgSlot, KernelFn};
use crate::loops::LoopSpec;
use crate::par::BlockColoring;
use crate::tiling::TilePlan;

/// One contiguous or listed slice of one loop's iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// Iterations `[start, end)` of chain loop `loop_idx`.
    Range {
        loop_idx: u32,
        start: u32,
        end: u32,
    },
    /// An explicit ascending iteration list of chain loop `loop_idx`.
    List { loop_idx: u32, iters: Vec<u32> },
}

impl Piece {
    /// Number of iterations the piece covers.
    pub fn len(&self) -> usize {
        match self {
            Piece::Range { start, end, .. } => (*end as usize).saturating_sub(*start as usize),
            Piece::List { iters, .. } => iters.len(),
        }
    }

    /// Whether the piece covers no iterations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which chain loop the piece belongs to.
    pub fn loop_idx(&self) -> usize {
        match self {
            Piece::Range { loop_idx, .. } | Piece::List { loop_idx, .. } => *loop_idx as usize,
        }
    }
}

/// The unit of work one worker executes without interruption: pieces in
/// order (for tiles, the tile's slice of `L_0`, then of `L_1`, …).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Chunk {
    pub pieces: Vec<Piece>,
}

impl Chunk {
    /// Total iterations across all pieces.
    pub fn iters(&self) -> usize {
        self.pieces.iter().map(Piece::len).sum()
    }
}

/// One barrier-delimited group of mutually conflict-free chunks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Level {
    pub chunks: Vec<Chunk>,
}

/// Which lowering produced a schedule — carried for tracing/diagnostics,
/// never consulted by the executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// A plain range or index list: one level, one chunk.
    Direct,
    /// Lowered from a (block) coloring: level per color.
    Colored { block_size: usize },
    /// Lowered from a leveled tile plan: level per tile-conflict level.
    Tiled { n_tiles: usize },
}

/// An executable schedule over an `n_loops`-long chain (1 for a single
/// loop). See the module docs for the level/chunk semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Number of chain loops the pieces index into.
    pub n_loops: usize,
    /// Provenance tag for traces.
    pub kind: ScheduleKind,
    /// Barrier-ordered levels.
    pub levels: Vec<Level>,
}

impl Schedule {
    /// A single loop over `[start, end)`: one level, one chunk.
    pub fn range(start: usize, end: usize) -> Schedule {
        Schedule {
            n_loops: 1,
            kind: ScheduleKind::Direct,
            levels: vec![Level {
                chunks: vec![Chunk {
                    pieces: vec![Piece::Range {
                        loop_idx: 0,
                        start: start as u32,
                        end: end.max(start) as u32,
                    }],
                }],
            }],
        }
    }

    /// A single loop over an explicit iteration list: one level, one
    /// chunk.
    pub fn list(iters: Vec<u32>) -> Schedule {
        Schedule {
            n_loops: 1,
            kind: ScheduleKind::Direct,
            levels: vec![Level {
                chunks: vec![Chunk {
                    pieces: vec![Piece::List {
                        loop_idx: 0,
                        iters,
                    }],
                }],
            }],
        }
    }

    /// Lower a greedy per-iteration [`Coloring`]: one level per color,
    /// each color's iterations split into list chunks of at most
    /// `chunk_size`. Greedy colorings reorder conflicting iterations
    /// across colors, so this lowering is race-free but **not** bitwise
    /// order-preserving (see [`Schedule::from_block_coloring`] for the
    /// lowering that is).
    pub fn from_coloring(coloring: &Coloring, chunk_size: usize) -> Schedule {
        let chunk_size = chunk_size.max(1);
        let levels = coloring
            .by_color
            .iter()
            .map(|bucket| Level {
                chunks: bucket
                    .chunks(chunk_size)
                    .map(|piece| Chunk {
                        pieces: vec![Piece::List {
                            loop_idx: 0,
                            iters: piece.to_vec(),
                        }],
                    })
                    .collect(),
            })
            .collect();
        Schedule {
            n_loops: 1,
            kind: ScheduleKind::Colored { block_size: 1 },
            levels,
        }
    }

    /// Lower a levelized order-preserving [`BlockColoring`]: one level
    /// per color, one chunk per block (a single range piece). Inherits
    /// the coloring's bitwise-identity contract.
    pub fn from_block_coloring(bc: &BlockColoring) -> Schedule {
        let levels = bc
            .by_color
            .iter()
            .map(|bucket| Level {
                chunks: bucket
                    .iter()
                    .map(|&b| {
                        let (s, e) = bc.block_range(b as usize);
                        Chunk {
                            pieces: vec![Piece::Range {
                                loop_idx: 0,
                                start: s as u32,
                                end: e as u32,
                            }],
                        }
                    })
                    .collect(),
            })
            .collect();
        Schedule {
            n_loops: 1,
            kind: ScheduleKind::Colored {
                block_size: bc.block_size,
            },
            levels,
        }
    }

    /// Lower a leveled [`TilePlan`] over an `n_loops`-long chain: one
    /// level per tile-conflict level, one chunk per tile holding the
    /// tile's slice of every loop in program order (empty slices are
    /// skipped). Within a level, tile ids ascend; conflicting tiles sit
    /// on strictly ascending levels in tile order, so level-order
    /// execution is bitwise identical to the ascending-tile sequential
    /// walk.
    pub fn from_tile_plan(plan: &TilePlan) -> Schedule {
        let n_loops = plan.iters.len();
        let levels = plan
            .by_level
            .iter()
            .map(|tiles| Level {
                chunks: tiles.iter().map(|&t| Self::tile_chunk(plan, t)).collect(),
            })
            .collect();
        Schedule {
            n_loops,
            kind: ScheduleKind::Tiled {
                n_tiles: plan.n_tiles,
            },
            levels,
        }
    }

    /// Lower only the tiles with `keep[t] == true` from a leveled
    /// [`TilePlan`], preserving the plan's level structure (levels left
    /// with no kept tiles are dropped). Used by the overlap executor to
    /// split one plan into a core schedule (runs while the exchange is
    /// in flight) and a post schedule (runs after the wait); level order
    /// within each half is exactly the full plan's, so running one half
    /// and then the other replays the full plan whenever the split
    /// itself is order-safe (see `tiling::overlap_core_tiles`).
    pub fn from_tile_plan_subset(plan: &TilePlan, keep: &[bool]) -> Schedule {
        let n_loops = plan.iters.len();
        let levels: Vec<Level> = plan
            .by_level
            .iter()
            .map(|tiles| Level {
                chunks: tiles
                    .iter()
                    .filter(|&&t| keep[t as usize])
                    .map(|&t| Self::tile_chunk(plan, t))
                    .collect(),
            })
            .filter(|l| !l.chunks.is_empty())
            .collect();
        Schedule {
            n_loops,
            kind: ScheduleKind::Tiled {
                n_tiles: plan.n_tiles,
            },
            levels,
        }
    }

    /// One tile as an executable chunk: its slice of every loop in
    /// program order, empty slices skipped.
    fn tile_chunk(plan: &TilePlan, t: u32) -> Chunk {
        Chunk {
            pieces: (0..plan.iters.len())
                .filter(|&j| !plan.iters[j][t as usize].is_empty())
                .map(|j| Piece::List {
                    loop_idx: j as u32,
                    iters: plan.iters[j][t as usize].clone(),
                })
                .collect(),
        }
    }

    /// Number of barrier-delimited levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total chunk count across all levels.
    pub fn n_chunks(&self) -> usize {
        self.levels.iter().map(|l| l.chunks.len()).sum()
    }

    /// Widest level (the available parallelism).
    pub fn max_level_chunks(&self) -> usize {
        self.levels.iter().map(|l| l.chunks.len()).max().unwrap_or(0)
    }

    /// Total iterations scheduled for chain loop `loop_idx`.
    pub fn loop_iters(&self, loop_idx: usize) -> usize {
        self.levels
            .iter()
            .flat_map(|l| &l.chunks)
            .flat_map(|c| &c.pieces)
            .filter(|p| p.loop_idx() == loop_idx)
            .map(Piece::len)
            .sum()
    }

    /// Whether running the schedule on threads can use more than one
    /// worker at a time.
    pub fn has_parallelism(&self) -> bool {
        self.max_level_chunks() > 1
    }
}

/// One resolved kernel argument: base pointer, element stride, access
/// mode, and how iteration index maps to element index.
#[derive(Debug, Clone, Copy)]
pub struct BoundArg {
    /// Base of the dat / gbl buffer.
    pub base: *mut f64,
    /// Components per element (gbl: buffer length).
    pub dim: u32,
    pub mode: AccessMode,
    /// `Some((map base, arity, idx))` for indirect args.
    pub map: Option<(*const u32, usize, usize)>,
    /// Direct args index by iteration; gbl args by zero.
    pub direct: bool,
}

/// A loop with every argument resolved to raw pointers — the single
/// kernel-invocation path all executors share.
///
/// # Safety contract
/// The pointers must reference buffers that outlive the `BoundLoop` and
/// are not reallocated while it is used. Concurrent execution is sound
/// only under a schedule whose same-level chunks modify disjoint
/// elements; all data access is value-based through [`Args`], so no
/// references are formed.
pub struct BoundLoop {
    pub kernel: KernelFn,
    pub args: Vec<BoundArg>,
}

// SAFETY: see the struct-level contract — callers only share a BoundLoop
// across threads under a conflict-free-by-construction schedule.
unsafe impl Sync for BoundLoop {}
unsafe impl Send for BoundLoop {}

impl BoundLoop {
    /// Resolve `spec` against a global domain. `gbl_bufs` (one buffer
    /// per [`crate::access::GblDecl`], preallocated by the caller) backs
    /// the loop's global arguments; it must not be moved or resized
    /// while the returned `BoundLoop` is live.
    pub fn bind(dom: &mut Domain, spec: &LoopSpec, gbl_bufs: &mut [Vec<f64>]) -> BoundLoop {
        let mut args = Vec::with_capacity(spec.args.len());
        for arg in &spec.args {
            match arg {
                Arg::Dat { dat, map, mode } => {
                    let dim = dom.dat(*dat).dim as u32;
                    let base = dom.dat_mut(*dat).data.as_mut_ptr();
                    let map_info = map.map(|(m, idx)| {
                        let md = dom.map(m);
                        (md.values.as_ptr(), md.arity, idx as usize)
                    });
                    args.push(BoundArg {
                        base,
                        dim,
                        mode: *mode,
                        map: map_info,
                        direct: map.is_none(),
                    });
                }
                Arg::Gbl { idx, mode } => {
                    let buf = &mut gbl_bufs[*idx as usize];
                    args.push(BoundArg {
                        base: buf.as_mut_ptr(),
                        dim: buf.len() as u32,
                        mode: *mode,
                        map: None,
                        direct: false,
                    });
                }
            }
        }
        BoundLoop {
            kernel: spec.kernel,
            args,
        }
    }

    /// Assemble from already-resolved parts — the distributed runtime
    /// resolves against its rank-local dat buffers and localized maps.
    pub fn from_parts(kernel: KernelFn, args: Vec<BoundArg>) -> BoundLoop {
        BoundLoop { kernel, args }
    }

    /// Fresh slot buffer for one worker.
    pub fn slots(&self) -> Vec<ArgSlot> {
        self.args
            .iter()
            .map(|r| ArgSlot {
                ptr: r.base,
                dim: r.dim,
                mode: r.mode,
            })
            .collect()
    }

    /// Run one iteration: point every slot at its element, call the
    /// kernel.
    #[inline]
    pub fn run_iter(&self, slots: &mut [ArgSlot], e: usize) {
        for (slot, r) in slots.iter_mut().zip(self.args.iter()) {
            let elem = match (&r.map, r.direct) {
                (Some((mbase, arity, idx)), _) => {
                    // SAFETY: map values validated at declaration; the
                    // schedule only covers iterations whose entries are
                    // within the built halo depth.
                    let v = unsafe { *mbase.add(e * arity + idx) };
                    debug_assert_ne!(v, u32::MAX, "map entry beyond built halo depth dereferenced");
                    v as usize
                }
                (None, true) => e,
                (None, false) => 0, // gbl
            };
            // SAFETY: in-bounds per dat declaration; concurrent writers
            // are excluded by the schedule's conflict-freedom.
            slot.ptr = unsafe { r.base.add(elem * r.dim as usize) };
        }
        (self.kernel)(&Args::new(slots));
    }

    /// Run iterations `[start, end)` on the calling thread.
    pub fn run_range(&self, start: usize, end: usize) {
        let mut slots = self.slots();
        for e in start..end {
            self.run_iter(&mut slots, e);
        }
    }

    /// Run an explicit iteration list on the calling thread.
    pub fn run_list(&self, iters: &[u32]) {
        let mut slots = self.slots();
        for &e in iters {
            self.run_iter(&mut slots, e as usize);
        }
    }
}

/// Execute one chunk: its pieces in order, on the calling thread.
/// `bound[j]` must be the resolution of chain loop `j`.
pub fn run_chunk(bound: &[BoundLoop], chunk: &Chunk) {
    for piece in &chunk.pieces {
        match piece {
            Piece::Range {
                loop_idx,
                start,
                end,
            } => bound[*loop_idx as usize].run_range(*start as usize, *end as usize),
            Piece::List { loop_idx, iters } => bound[*loop_idx as usize].run_list(iters),
        }
    }
}

/// Execute a schedule sequentially: levels in order, chunks in order.
/// This is the reference semantics every threaded execution must match.
pub fn run_schedule(bound: &[BoundLoop], sched: &Schedule) {
    debug_assert_eq!(bound.len(), sched.n_loops);
    for level in &sched.levels {
        for chunk in &level.chunks {
            run_chunk(bound, chunk);
        }
    }
}

/// Execute a schedule with `n_threads` scoped OS threads per level
/// (barrier between levels). The reference threaded executor for
/// core-level tests and single-domain callers; the runtime crate runs
/// the same schedules on its per-rank pool.
pub fn run_schedule_threads(bound: &[BoundLoop], sched: &Schedule, n_threads: usize) {
    assert!(n_threads >= 1);
    debug_assert_eq!(bound.len(), sched.n_loops);
    if n_threads == 1 {
        return run_schedule(bound, sched);
    }
    for level in &sched.levels {
        let per = level.chunks.len().div_ceil(n_threads).max(1);
        std::thread::scope(|scope| {
            for group in level.chunks.chunks(per) {
                scope.spawn(move || {
                    for chunk in group {
                        run_chunk(bound, chunk);
                    }
                });
            }
        });
    }
}

/// Execute `spec` under `sched` on the global domain, sequentially.
pub fn run_loop_schedule(dom: &mut Domain, spec: &LoopSpec, sched: &Schedule) -> crate::seq::LoopResult {
    let mut gbl_bufs: Vec<Vec<f64>> = spec.gbls.iter().map(|g| g.init.clone()).collect();
    let bound = BoundLoop::bind(dom, spec, &mut gbl_bufs);
    run_schedule(std::slice::from_ref(&bound), sched);
    crate::seq::LoopResult { gbls: gbl_bufs }
}

/// Execute `spec` under `sched` on the global domain with `n_threads`
/// workers.
///
/// # Panics
/// Panics if the loop carries global reduction arguments — a reduction's
/// accumulation order is thread-schedule dependent, so such loops stay
/// sequential.
pub fn run_loop_schedule_threads(
    dom: &mut Domain,
    spec: &LoopSpec,
    sched: &Schedule,
    n_threads: usize,
) {
    assert!(
        !spec.has_reduction(),
        "threaded execution does not support global reductions"
    );
    let mut gbl_bufs: Vec<Vec<f64>> = spec.gbls.iter().map(|g| g.init.clone()).collect();
    let bound = BoundLoop::bind(dom, spec, &mut gbl_bufs);
    run_schedule_threads(std::slice::from_ref(&bound), sched, n_threads);
}

/// Bind every loop of `chain` against the global domain. Returns the
/// bound loops plus the per-loop global buffers backing them (which must
/// stay alive and unmoved while the bounds are used).
pub fn bind_chain(
    dom: &mut Domain,
    chain: &crate::ChainSpec,
) -> (Vec<BoundLoop>, Vec<Vec<Vec<f64>>>) {
    let mut gbls: Vec<Vec<Vec<f64>>> = chain
        .loops
        .iter()
        .map(|s| s.gbls.iter().map(|g| g.init.clone()).collect())
        .collect();
    let mut bound = Vec::with_capacity(chain.len());
    for (spec, bufs) in chain.loops.iter().zip(gbls.iter_mut()) {
        bound.push(BoundLoop::bind(dom, spec, bufs));
    }
    (bound, gbls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMode, Arg};
    use crate::loops::LoopSpec;

    fn bump(args: &Args<'_>) {
        args.set(0, 0, args.get(0, 0) + 1.0);
    }

    fn fixture(n: usize) -> (Domain, LoopSpec, crate::DatId) {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n);
        let x = dom.decl_dat_zeros("x", nodes, 1);
        let spec = LoopSpec::new("bump", nodes, vec![Arg::dat_direct(x, AccessMode::Rw)], bump);
        (dom, spec, x)
    }

    #[test]
    fn range_schedule_shape() {
        let s = Schedule::range(3, 11);
        assert_eq!(s.n_levels(), 1);
        assert_eq!(s.n_chunks(), 1);
        assert_eq!(s.loop_iters(0), 8);
        assert!(!s.has_parallelism());
    }

    #[test]
    fn range_and_list_lowerings_execute() {
        let (mut dom, spec, x) = fixture(6);
        run_loop_schedule(&mut dom, &spec, &Schedule::range(1, 4));
        run_loop_schedule(&mut dom, &spec, &Schedule::list(vec![0, 3, 5]));
        assert_eq!(dom.dat(x).data, vec![1.0, 1.0, 1.0, 2.0, 0.0, 1.0]);
    }

    #[test]
    fn threaded_schedule_matches_sequential() {
        // Two disjoint chunks on one level: safe to run concurrently.
        let sched = Schedule {
            n_loops: 1,
            kind: ScheduleKind::Direct,
            levels: vec![Level {
                chunks: vec![
                    Chunk {
                        pieces: vec![Piece::Range {
                            loop_idx: 0,
                            start: 0,
                            end: 50,
                        }],
                    },
                    Chunk {
                        pieces: vec![Piece::Range {
                            loop_idx: 0,
                            start: 50,
                            end: 100,
                        }],
                    },
                ],
            }],
        };
        let (mut a, spec, x) = fixture(100);
        let (mut b, _, _) = fixture(100);
        run_loop_schedule(&mut a, &spec, &sched);
        run_loop_schedule_threads(&mut b, &spec, &sched, 4);
        assert_eq!(a.dat(x).data, b.dat(x).data);
    }
}
