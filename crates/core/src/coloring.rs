//! Conflict-graph coloring — OP2's on-node parallelisation substrate.
//!
//! Two iterations of an indirect-increment loop conflict when they
//! modify the same target element; OP2's shared-memory back-ends (OpenMP,
//! CUDA — the device side of §3.3) execute such loops *color by color*:
//! within one color no two iterations share a modified target, so they
//! can run concurrently without atomics, and colors are synchronisation
//! points. This module provides the greedy coloring and a conflict
//! checker; `op2-runtime`'s threaded executor consumes it.

use crate::access::Arg;
use crate::domain::Domain;
use crate::loops::LoopSig;

/// A loop coloring: `color[e]` for every iteration, plus the per-color
/// iteration lists.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// Number of colors.
    pub n_colors: usize,
    /// Color of every iteration.
    pub color: Vec<u32>,
    /// Iterations per color, ascending ids.
    pub by_color: Vec<Vec<u32>>,
}

/// Greedily color `sig`'s iterations so no two iterations of one color
/// modify the same element of any indirectly-modified dat. Direct
/// modifications never conflict (each iteration owns its element);
/// loops with no indirect modifications get a single color.
pub fn color_loop(dom: &Domain, sig: &LoopSig) -> Coloring {
    let n_iter = dom.set(sig.set).size;
    // Indirectly-modified (map, index) pairs.
    let mod_args: Vec<(usize, usize)> = sig
        .args
        .iter()
        .filter_map(|a| match a {
            Arg::Dat {
                map: Some((m, idx)),
                mode,
                ..
            } if mode.modifies() => Some((m.idx(), *idx as usize)),
            _ => None,
        })
        .collect();
    if mod_args.is_empty() {
        return Coloring {
            n_colors: 1,
            color: vec![0; n_iter],
            by_color: vec![(0..n_iter as u32).collect()],
        };
    }

    // For every target element of every touched set, a bitmask of colors
    // already used by iterations modifying it (64 colors is ample for
    // bounded-degree meshes; fall back to linear probing beyond).
    let mut used: Vec<Vec<u64>> = dom.sets().iter().map(|s| vec![0u64; s.size]).collect();
    let mut color = vec![0u32; n_iter];
    let mut n_colors = 1usize;
    for e in 0..n_iter {
        let mut mask = 0u64;
        for &(m, idx) in &mod_args {
            let md = &dom.maps()[m];
            let t = md.values[e * md.arity + idx] as usize;
            mask |= used[md.to.idx()][t];
        }
        let c = (!mask).trailing_zeros().min(63);
        color[e] = c;
        n_colors = n_colors.max(c as usize + 1);
        for &(m, idx) in &mod_args {
            let md = &dom.maps()[m];
            let t = md.values[e * md.arity + idx] as usize;
            used[md.to.idx()][t] |= 1 << c;
        }
    }

    let mut by_color: Vec<Vec<u32>> = vec![Vec::new(); n_colors];
    for (e, &c) in color.iter().enumerate() {
        by_color[c as usize].push(e as u32);
    }
    Coloring {
        n_colors,
        color,
        by_color,
    }
}

/// Verify a coloring: no two same-color iterations modify the same
/// element. Used by tests and debug assertions.
pub fn is_valid_coloring(dom: &Domain, sig: &LoopSig, coloring: &Coloring) -> bool {
    let mod_args: Vec<(usize, usize)> = sig
        .args
        .iter()
        .filter_map(|a| match a {
            Arg::Dat {
                map: Some((m, idx)),
                mode,
                ..
            } if mode.modifies() => Some((m.idx(), *idx as usize)),
            _ => None,
        })
        .collect();
    for bucket in &coloring.by_color {
        let mut touched: Vec<std::collections::HashSet<u32>> =
            dom.sets().iter().map(|_| std::collections::HashSet::new()).collect();
        for &e in bucket {
            for &(m, idx) in &mod_args {
                let md = &dom.maps()[m];
                let t = md.values[e as usize * md.arity + idx];
                if !touched[md.to.idx()].insert(t) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessMode;
    use crate::loops::LoopSpec;

    fn noop(_: &crate::kernel::Args<'_>) {}

    fn edge_domain(n_nodes: usize) -> (Domain, LoopSig) {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n_nodes);
        let edges = dom.decl_set("edges", n_nodes - 1);
        let vals: Vec<u32> = (0..n_nodes as u32 - 1).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let spec = LoopSpec::new(
            "inc",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Inc),
            ],
            noop,
        );
        (dom, spec.sig())
    }

    /// A path graph two-colors: alternating edges never share a node.
    #[test]
    fn path_graph_two_colors() {
        let (dom, sig) = edge_domain(20);
        let c = color_loop(&dom, &sig);
        assert_eq!(c.n_colors, 2);
        assert!(is_valid_coloring(&dom, &sig, &c));
        // Every iteration colored, partition is complete.
        let total: usize = c.by_color.iter().map(Vec::len).sum();
        assert_eq!(total, 19);
    }

    /// Direct-only loops need one color.
    #[test]
    fn direct_loop_single_color() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 10);
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let spec = LoopSpec::new("w", nodes, vec![Arg::dat_direct(a, AccessMode::Write)], noop);
        let c = color_loop(&dom, &spec.sig());
        assert_eq!(c.n_colors, 1);
        assert!(is_valid_coloring(&dom, &spec.sig(), &c));
    }

    /// On a 3D hex mesh the edge loop colors within the degree bound.
    #[test]
    fn hex_mesh_color_count_bounded() {
        // Build a small hex-like structure inline: 3x3x3 grid edges.
        let n = 3usize;
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n * n * n);
        let node = |i: usize, j: usize, k: usize| ((k * n + j) * n + i) as u32;
        let mut vals = Vec::new();
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    if i + 1 < n {
                        vals.extend_from_slice(&[node(i, j, k), node(i + 1, j, k)]);
                    }
                    if j + 1 < n {
                        vals.extend_from_slice(&[node(i, j, k), node(i, j + 1, k)]);
                    }
                    if k + 1 < n {
                        vals.extend_from_slice(&[node(i, j, k), node(i, j, k + 1)]);
                    }
                }
            }
        }
        let edges = dom.decl_set("edges", vals.len() / 2);
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let spec = LoopSpec::new(
            "inc",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Inc),
            ],
            noop,
        );
        let c = color_loop(&dom, &spec.sig());
        assert!(is_valid_coloring(&dom, &spec.sig(), &c));
        // Greedy coloring of a degree-6 line graph stays well bounded.
        assert!(c.n_colors <= 12, "{} colors", c.n_colors);
    }
}
