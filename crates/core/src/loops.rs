//! Parallel-loop declarations (`op_par_loop`).

use crate::access::{AccessMode, Arg, GblDecl};
use crate::domain::{Domain, SetId};
use crate::error::{CoreError, Result};
use crate::kernel::KernelFn;

/// A full parallel-loop declaration: the OP2 `op_par_loop` call.
///
/// Cloneable and cheap: the kernel is a function pointer and the arguments
/// are small descriptors. Executors (sequential, distributed, CA,
/// GPU-simulated) all consume the same `LoopSpec`.
#[derive(Clone)]
pub struct LoopSpec {
    /// Loop name — the identity used by loop-chain configuration files.
    pub name: String,
    /// Iteration set.
    pub set: SetId,
    /// Access descriptors, in kernel-argument order.
    pub args: Vec<Arg>,
    /// Global-argument declarations, indexed by `Arg::Gbl::idx`.
    pub gbls: Vec<GblDecl>,
    /// The user function applied to every element.
    pub kernel: KernelFn,
}

impl std::fmt::Debug for LoopSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopSpec")
            .field("name", &self.name)
            .field("set", &self.set)
            .field("args", &self.args)
            .field("gbls", &self.gbls.len())
            .finish()
    }
}

impl LoopSpec {
    /// Declare a loop with no global arguments.
    pub fn new(name: &str, set: SetId, args: Vec<Arg>, kernel: KernelFn) -> Self {
        LoopSpec {
            name: name.to_string(),
            set,
            args,
            gbls: Vec::new(),
            kernel,
        }
    }

    /// Declare a loop with global arguments (constants / reductions).
    pub fn with_gbls(
        name: &str,
        set: SetId,
        args: Vec<Arg>,
        gbls: Vec<GblDecl>,
        kernel: KernelFn,
    ) -> Self {
        LoopSpec {
            name: name.to_string(),
            set,
            args,
            gbls,
            kernel,
        }
    }

    /// The analysis-only view of this loop (used by Alg 3 and the
    /// partitioning layer, which never call the kernel).
    pub fn sig(&self) -> LoopSig {
        LoopSig {
            name: self.name.clone(),
            set: self.set,
            args: self.args.clone(),
        }
    }

    /// Does the loop perform a global reduction? Such loops are
    /// synchronisation points and terminate any loop-chain.
    pub fn has_reduction(&self) -> bool {
        self.args
            .iter()
            .any(|a| matches!(a, Arg::Gbl { mode, .. } if mode.modifies()))
    }

    /// Validate the loop against a domain: maps must start at the
    /// iteration set, map indices must be within arity, dats must live on
    /// the right set, global modes must be `Read` or `Inc`.
    pub fn validate(&self, dom: &Domain) -> Result<()> {
        for (i, arg) in self.args.iter().enumerate() {
            match arg {
                Arg::Dat { dat, map, mode } => {
                    let d = dom.dat(*dat);
                    match map {
                        None => {
                            if d.set != self.set {
                                return Err(CoreError::BadArg {
                                    what: "direct access on wrong set",
                                    detail: format!(
                                        "loop `{}` arg {i}: dat `{}` lives on `{}`, loop iterates `{}`",
                                        self.name,
                                        d.name,
                                        dom.set(d.set).name,
                                        dom.set(self.set).name
                                    ),
                                });
                            }
                        }
                        Some((map_id, idx)) => {
                            let m = dom.map(*map_id);
                            if m.from != self.set {
                                return Err(CoreError::BadArg {
                                    what: "map from wrong set",
                                    detail: format!(
                                        "loop `{}` arg {i}: map `{}` starts at `{}`, loop iterates `{}`",
                                        self.name,
                                        m.name,
                                        dom.set(m.from).name,
                                        dom.set(self.set).name
                                    ),
                                });
                            }
                            if *idx as usize >= m.arity {
                                return Err(CoreError::BadArg {
                                    what: "map index out of arity",
                                    detail: format!(
                                        "loop `{}` arg {i}: index {idx} >= arity {}",
                                        self.name, m.arity
                                    ),
                                });
                            }
                            if m.to != d.set {
                                return Err(CoreError::BadArg {
                                    what: "map target mismatch",
                                    detail: format!(
                                        "loop `{}` arg {i}: map `{}` targets `{}`, dat `{}` lives on `{}`",
                                        self.name,
                                        m.name,
                                        dom.set(m.to).name,
                                        d.name,
                                        dom.set(d.set).name
                                    ),
                                });
                            }
                        }
                    }
                    let _ = mode;
                }
                Arg::Gbl { idx, mode } => {
                    if *idx as usize >= self.gbls.len() {
                        return Err(CoreError::BadArg {
                            what: "gbl index out of range",
                            detail: format!(
                                "loop `{}` arg {i}: gbl index {idx} >= {} declared",
                                self.name,
                                self.gbls.len()
                            ),
                        });
                    }
                    if !matches!(mode, AccessMode::Read | AccessMode::Inc) {
                        return Err(CoreError::BadArg {
                            what: "gbl mode",
                            detail: format!(
                                "loop `{}` arg {i}: globals must be Read or Inc, got {:?}",
                                self.name, mode
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// The access-descriptor signature of a loop: everything the dependency
/// analysis needs, without the kernel.
#[derive(Debug, Clone)]
pub struct LoopSig {
    /// Loop name.
    pub name: String,
    /// Iteration set.
    pub set: SetId,
    /// Access descriptors.
    pub args: Vec<Arg>,
}

impl LoopSig {
    /// Combined access of dat `dat` in this loop, merging multiple
    /// arguments on the same dat (e.g. map indices 0 and 1): returns the
    /// strongest mode and whether any access is indirect.
    ///
    /// Mode merging: any `Inc` dominates (`Inc`+`Read` ⇒ the loop both
    /// reads and modifies, which for chain analysis behaves like `Rw`);
    /// `Read`+`Write` ⇒ `Rw`; identical modes collapse.
    pub fn access_of(&self, dat: crate::domain::DatId) -> Option<(AccessMode, bool)> {
        let mut found: Option<(AccessMode, bool)> = None;
        for a in &self.args {
            if let Arg::Dat { dat: d, map, mode } = a {
                if *d == dat {
                    let ind = map.is_some();
                    found = Some(match found {
                        None => (*mode, ind),
                        Some((prev, pind)) => (merge_modes(prev, *mode), pind || ind),
                    });
                }
            }
        }
        found
    }

    /// All distinct dats touched by this loop, in first-appearance order.
    pub fn dats(&self) -> Vec<crate::domain::DatId> {
        let mut out = Vec::new();
        for a in &self.args {
            if let Some(d) = a.dat_id() {
                if !out.contains(&d) {
                    out.push(d);
                }
            }
        }
        out
    }
}

/// Merge two access modes on the same dat within one loop.
fn merge_modes(a: AccessMode, b: AccessMode) -> AccessMode {
    use AccessMode::*;
    if a == b {
        return a;
    }
    match (a.reads() || b.reads(), a.modifies() || b.modifies()) {
        (true, true) => {
            // Reading + modifying: Inc-only pairs keep Inc semantics
            // (order-independent); anything involving Write/Rw/Read+Inc
            // behaves as Rw for the dependency analysis.
            if matches!((a, b), (Inc, Inc)) {
                Inc
            } else {
                Rw
            }
        }
        (true, false) => Read,
        (false, true) => Write,
        (false, false) => unreachable!("every mode reads or modifies"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    fn noop(_: &crate::kernel::Args<'_>) {}

    fn tiny_domain() -> (Domain, SetId, SetId, crate::domain::MapId, crate::domain::DatId) {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 3);
        let edges = dom.decl_set("edges", 2);
        let e2n = dom
            .decl_map("e2n", edges, nodes, 2, vec![0, 1, 1, 2])
            .unwrap();
        let x = dom.decl_dat_zeros("x", nodes, 2);
        (dom, nodes, edges, e2n, x)
    }

    #[test]
    fn validate_accepts_good_loop() {
        let (dom, _nodes, edges, e2n, x) = tiny_domain();
        let l = LoopSpec::new(
            "ok",
            edges,
            vec![
                Arg::dat_indirect(x, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(x, e2n, 1, AccessMode::Inc),
            ],
            noop,
        );
        l.validate(&dom).unwrap();
        assert!(!l.has_reduction());
    }

    #[test]
    fn validate_rejects_wrong_set_direct() {
        let (dom, _nodes, edges, _e2n, x) = tiny_domain();
        let l = LoopSpec::new("bad", edges, vec![Arg::dat_direct(x, AccessMode::Read)], noop);
        assert!(l.validate(&dom).is_err());
    }

    #[test]
    fn validate_rejects_bad_map_index() {
        let (dom, _nodes, edges, e2n, x) = tiny_domain();
        let l = LoopSpec::new(
            "bad",
            edges,
            vec![Arg::dat_indirect(x, e2n, 7, AccessMode::Read)],
            noop,
        );
        assert!(l.validate(&dom).is_err());
    }

    #[test]
    fn reduction_detection() {
        let (dom, nodes, _edges, _e2n, x) = tiny_domain();
        let l = LoopSpec::with_gbls(
            "rms",
            nodes,
            vec![
                Arg::dat_direct(x, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::reduction(1)],
            noop,
        );
        l.validate(&dom).unwrap();
        assert!(l.has_reduction());
    }

    #[test]
    fn access_merging() {
        let (_dom, _nodes, edges, e2n, x) = tiny_domain();
        let sig = LoopSig {
            name: "m".into(),
            set: edges,
            args: vec![
                Arg::dat_indirect(x, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(x, e2n, 1, AccessMode::Inc),
            ],
        };
        assert_eq!(sig.access_of(x), Some((AccessMode::Inc, true)));
        let sig2 = LoopSig {
            name: "m2".into(),
            set: edges,
            args: vec![
                Arg::dat_indirect(x, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(x, e2n, 1, AccessMode::Write),
            ],
        };
        assert_eq!(sig2.access_of(x), Some((AccessMode::Rw, true)));
    }
}
