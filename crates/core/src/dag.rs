//! Per-chunk dependency DAG over a lowered [`Schedule`] — the inspector
//! side of the dataflow executor.
//!
//! The leveled schedule is a conservative rendering of the true
//! dependence structure: a level barrier orders *every* chunk of level
//! `k` against *every* chunk of level `k+1`, even when only one pair
//! actually conflicts. [`ChunkDag::build`] recovers the exact structure:
//! an edge `p → c` exists iff chunk `p` and chunk `c` touch a common
//! element with at least one side modifying it. A chunk may then *fire*
//! the moment its own predecessors finish, across level boundaries —
//! the level-synchronous idle time (every chunk waiting for the slowest
//! chunk of the previous level) disappears.
//!
//! **Determinism argument (`OP_INC` merge ordering).** Chunks are
//! enumerated level-major (level 0's chunks first, in order, then level
//! 1's, …). The order-preserving lowerings guarantee that every
//! conflicting chunk pair sits in *distinct* levels, ascending in
//! sequential iteration order — so for any two conflicting chunks the
//! level-major enumeration agrees with sequential execution order, and
//! the builder (which scans chunks in that enumeration, tracking the
//! last writer and *every* reader since it per element) emits an edge
//! for each such pair. Any execution that respects the DAG therefore
//! applies each element's updates — in particular its floating-point
//! `Inc` merges — in exactly the sequential order; chunks with no path
//! between them touch disjoint modified elements and may interleave
//! freely. Results are **bitwise identical** to the sequential walk at
//! any thread count, with any steal order.
//!
//! The access lists come from [`dag_accesses`], a *chain-wide* variant
//! of [`crate::par::conflict_accesses`]: where the per-loop coloring
//! only needs the dats a loop modifies through a map, cross-chunk edges
//! of a chain schedule must also cover dats one loop writes (even
//! directly) and another reads — the write→read hand-off between chain
//! loops that the per-loop rule deliberately ignores.

use crate::access::Arg;
use crate::domain::{DatId, MapData};
use crate::loops::LoopSig;
use crate::par::ConflictAccess;
use crate::schedule::{Piece, Schedule};

/// The per-chunk dependency DAG of one lowered [`Schedule`]. Chunk ids
/// are level-major positions (level 0's chunks first, in order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkDag {
    /// Number of chunks (nodes).
    pub n_chunks: usize,
    /// Number of edges.
    pub n_edges: usize,
    /// Predecessor count per chunk — the initial value of each chunk's
    /// firing counter.
    pub deps: Vec<u32>,
    /// Successor lists: `succs[p]` are the chunks whose counters drop
    /// when `p` finishes.
    pub succs: Vec<Vec<u32>>,
    /// `(level, index-within-level)` of each chunk id, for executors
    /// that walk the owning [`Schedule`].
    pub locs: Vec<(u32, u32)>,
    /// Chunks with no predecessors, ascending (level-major order).
    pub roots: Vec<u32>,
    /// Longest-path depth per chunk (roots = 1).
    pub depth: Vec<u32>,
    /// Critical-path length — the serial lower bound on dataflow
    /// execution, against `n_levels` barriers for the leveled walk.
    pub crit_path: u32,
}

/// Apply `f(access, element)` for every conflict-relevant access of one
/// piece. Fused pieces union the accesses of every member loop.
fn for_each_access(
    sched: &Schedule,
    accesses: &[Vec<ConflictAccess<'_>>],
    piece: &Piece,
    f: &mut impl FnMut(&ConflictAccess<'_>, usize),
) {
    let on_loop = |lj: usize, e: usize, f: &mut dyn FnMut(&ConflictAccess<'_>, usize)| {
        for a in &accesses[lj] {
            f(a, e);
        }
    };
    match piece {
        Piece::Range {
            loop_idx,
            start,
            end,
        } => {
            for e in *start..*end {
                on_loop(*loop_idx as usize, e as usize, f);
            }
        }
        Piece::List { loop_idx, iters } => {
            for &e in iters {
                on_loop(*loop_idx as usize, e as usize, f);
            }
        }
        Piece::Fused { group, start, end } => {
            for e in *start..*end {
                for &lj in &sched.fused[*group as usize].loops {
                    on_loop(lj as usize, e as usize, f);
                }
            }
        }
        Piece::FusedList { group, iters } => {
            for &e in iters {
                for &lj in &sched.fused[*group as usize].loops {
                    on_loop(lj as usize, e as usize, f);
                }
            }
        }
    }
}

impl ChunkDag {
    /// Build the DAG for `sched`. `accesses[j]` are loop `j`'s
    /// conflict-relevant accesses (one entry per chain loop — use
    /// [`dag_accesses`]); `set_sizes` bounds the target index space per
    /// set, exactly as in [`crate::par::color_blocks_raw`].
    ///
    /// Scans chunks level-major, tracking per element the last writing
    /// chunk and **every** reading chunk since that write: a writer
    /// depends on the last writer *and all* intervening readers (with
    /// barriers gone, waiting on the latest reader alone would not
    /// imply the earlier ones finished), a reader depends on the last
    /// writer only. Self-edges cannot arise (a chunk's own accesses are
    /// recorded only after its predecessors are gathered).
    pub fn build(
        sched: &Schedule,
        set_sizes: &[usize],
        accesses: &[Vec<ConflictAccess<'_>>],
    ) -> ChunkDag {
        assert_eq!(
            accesses.len(),
            sched.n_loops,
            "one access list per chain loop"
        );
        let n_chunks = sched.n_chunks();
        // 1-based last-writer chunk per element (0 = none yet), and the
        // 1-based chunks that read it since (ascending, deduped at the
        // tail — one chunk's repeat reads are adjacent).
        let mut last_w: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![0u32; s]).collect();
        let mut readers: Vec<Vec<Vec<u32>>> =
            set_sizes.iter().map(|&s| vec![Vec::new(); s]).collect();
        let mut deps = vec![0u32; n_chunks];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n_chunks];
        let mut locs = Vec::with_capacity(n_chunks);
        let mut depth = vec![0u32; n_chunks];
        // Stamp array deduping this chunk's predecessor set.
        let mut mark = vec![u32::MAX; n_chunks];
        let mut preds: Vec<u32> = Vec::new();
        let mut n_edges = 0usize;
        let mut c = 0u32;
        for (li, level) in sched.levels.iter().enumerate() {
            for (ci, chunk) in level.chunks.iter().enumerate() {
                locs.push((li as u32, ci as u32));
                preds.clear();
                for piece in &chunk.pieces {
                    for_each_access(sched, accesses, piece, &mut |a, e| {
                        let t = a.target(e);
                        let w = last_w[a.set][t];
                        if w != 0 && mark[(w - 1) as usize] != c {
                            mark[(w - 1) as usize] = c;
                            preds.push(w - 1);
                        }
                        if a.writes {
                            for &r in &readers[a.set][t] {
                                if mark[(r - 1) as usize] != c {
                                    mark[(r - 1) as usize] = c;
                                    preds.push(r - 1);
                                }
                            }
                        }
                    });
                }
                for piece in &chunk.pieces {
                    for_each_access(sched, accesses, piece, &mut |a, e| {
                        let t = a.target(e);
                        if a.writes {
                            last_w[a.set][t] = c + 1;
                            readers[a.set][t].clear();
                        } else if readers[a.set][t].last() != Some(&(c + 1)) {
                            readers[a.set][t].push(c + 1);
                        }
                    });
                }
                let mut d = 0u32;
                for &p in &preds {
                    succs[p as usize].push(c);
                    deps[c as usize] += 1;
                    d = d.max(depth[p as usize]);
                    n_edges += 1;
                }
                depth[c as usize] = d + 1;
                c += 1;
            }
        }
        let roots: Vec<u32> = (0..n_chunks as u32)
            .filter(|&i| deps[i as usize] == 0)
            .collect();
        let crit_path = depth.iter().copied().max().unwrap_or(0);
        ChunkDag {
            n_chunks,
            n_edges,
            deps,
            succs,
            locs,
            roots,
            depth,
            crit_path,
        }
    }
}

/// Chain-wide conflict access lists for [`ChunkDag::build`]: for each
/// loop, every dat argument (read or write, direct or indirect) of any
/// dat *modified anywhere in the chain*. Unlike the per-loop
/// [`crate::par::conflict_accesses`], this covers cross-loop write→read
/// hand-offs — including through dats a loop writes only directly,
/// which within one loop can never collide (each iteration owns its
/// element) but across loops absolutely can. Dats never modified in the
/// chain induce only read↔read pairs and are skipped.
pub fn dag_accesses<'a>(maps: &'a [MapData], sigs: &[LoopSig]) -> Vec<Vec<ConflictAccess<'a>>> {
    let mut modified: Vec<DatId> = Vec::new();
    for sig in sigs {
        for a in &sig.args {
            if let Arg::Dat { dat, mode, .. } = a {
                if mode.modifies() && !modified.contains(dat) {
                    modified.push(*dat);
                }
            }
        }
    }
    sigs.iter()
        .map(|sig| {
            let mut out = Vec::new();
            for a in &sig.args {
                if let Arg::Dat { dat, map, mode } = a {
                    if !modified.contains(dat) {
                        continue;
                    }
                    match map {
                        Some((m, idx)) => {
                            let md = &maps[m.idx()];
                            out.push(ConflictAccess {
                                map: Some((md.values.as_slice(), md.arity, *idx as usize)),
                                set: md.to.idx(),
                                writes: mode.modifies(),
                            });
                        }
                        None => out.push(ConflictAccess {
                            map: None,
                            set: sig.set.idx(),
                            writes: mode.modifies(),
                        }),
                    }
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessMode;
    use crate::domain::Domain;
    use crate::kernel::Args;
    use crate::loops::LoopSpec;
    use crate::par::color_blocks;
    use crate::schedule::{Chunk, Level, ScheduleKind};

    fn noop(_: &Args<'_>) {}

    fn path_fixture(n_nodes: usize) -> (Domain, LoopSpec) {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n_nodes);
        let edges = dom.decl_set("edges", n_nodes - 1);
        let vals: Vec<u32> = (0..n_nodes as u32 - 1).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let p = dom.decl_dat_zeros("pres", nodes, 1);
        let r = dom.decl_dat_zeros("res", nodes, 1);
        let spec = LoopSpec::new(
            "flux",
            edges,
            vec![
                Arg::dat_indirect(r, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(r, e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(p, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(p, e2n, 1, AccessMode::Read),
            ],
            noop,
        );
        (dom, spec)
    }

    fn dag_for(dom: &Domain, spec: &LoopSpec, block_size: usize) -> (Schedule, ChunkDag) {
        let bc = color_blocks(dom, &spec.sig(), block_size);
        let sched = Schedule::from_block_coloring(&bc);
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        let acc = dag_accesses(dom.maps(), &[spec.sig()]);
        let dag = ChunkDag::build(&sched, &set_sizes, &acc);
        (sched, dag)
    }

    /// On a path graph, consecutive blocks chain: the DAG is a single
    /// path whose critical depth equals the level count.
    #[test]
    fn path_blocks_form_a_chain() {
        let (dom, spec) = path_fixture(65);
        let (sched, dag) = dag_for(&dom, &spec, 16);
        assert_eq!(dag.n_chunks, 4);
        assert_eq!(dag.deps, vec![0, 1, 1, 1]);
        assert_eq!(dag.succs, vec![vec![1], vec![2], vec![3], vec![]]);
        assert_eq!(dag.roots, vec![0]);
        assert_eq!(dag.crit_path as usize, sched.n_levels());
        assert_eq!(dag.n_edges, 3);
    }

    /// Disjoint blocks are all roots: depth 1 everywhere, no edges.
    #[test]
    fn disjoint_blocks_are_all_roots() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 8);
        let edges = dom.decl_set("edges", 4);
        let vals: Vec<u32> = (0..4u32).flat_map(|i| [2 * i, 2 * i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let r = dom.decl_dat_zeros("res", nodes, 1);
        let spec = LoopSpec::new(
            "inc",
            edges,
            vec![
                Arg::dat_indirect(r, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(r, e2n, 1, AccessMode::Inc),
            ],
            noop,
        );
        let (_, dag) = dag_for(&dom, &spec, 1);
        assert_eq!(dag.n_edges, 0);
        assert_eq!(dag.roots, vec![0, 1, 2, 3]);
        assert_eq!(dag.crit_path, 1);
    }

    /// A writer must depend on **every** reader since the last write,
    /// not just the latest one — the readers-list rule.
    #[test]
    fn writer_depends_on_all_intervening_readers() {
        let mut dom = Domain::new();
        let iters = dom.decl_set("iters", 4);
        let targets = dom.decl_set("targets", 4);
        // it0 writes t0; it1/it2 (same level) read t0; it3 rewrites t0.
        let wmap = dom
            .decl_map("w", iters, targets, 1, vec![0, 1, 2, 0])
            .unwrap();
        let rmap = dom
            .decl_map("r", iters, targets, 1, vec![3, 0, 0, 3])
            .unwrap();
        let x = dom.decl_dat_zeros("x", targets, 1);
        let spec = LoopSpec::new(
            "rw",
            iters,
            vec![
                Arg::dat_indirect(x, wmap, 0, AccessMode::Write),
                Arg::dat_indirect(x, rmap, 0, AccessMode::Read),
            ],
            noop,
        );
        // Hand-built: level 0 = {it0}, level 1 = {it1}, {it2}, level 2 =
        // {it3}. it1 and it2 only read x[0] → conflict-free, same level.
        let chunk = |s: u32, e: u32| Chunk {
            pieces: vec![Piece::Range {
                loop_idx: 0,
                start: s,
                end: e,
            }],
        };
        let sched = Schedule {
            n_loops: 1,
            kind: ScheduleKind::Colored { block_size: 1 },
            levels: vec![
                Level {
                    chunks: vec![chunk(0, 1)],
                },
                Level {
                    chunks: vec![chunk(1, 2), chunk(2, 3)],
                },
                Level {
                    chunks: vec![chunk(3, 4)],
                },
            ],
            fused: Vec::new(),
        };
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        let acc = dag_accesses(dom.maps(), &[spec.sig()]);
        let dag = ChunkDag::build(&sched, &set_sizes, &acc);
        // Readers 1 and 2 each depend on writer 0; rewriter 3 depends on
        // writer 0 *and both* readers.
        assert_eq!(dag.deps, vec![0, 1, 1, 3]);
        assert!(dag.succs[1].contains(&3) && dag.succs[2].contains(&3));
        assert_eq!(dag.crit_path, 3);
    }

    /// Cross-loop hand-off through a directly-written dat: the per-loop
    /// conflict rule ignores it (no intra-loop collision is possible),
    /// the chain-wide [`dag_accesses`] must not.
    #[test]
    fn chain_accesses_cover_direct_write_to_indirect_read() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 3);
        let edges = dom.decl_set("edges", 2);
        let e2n = dom
            .decl_map("e2n", edges, nodes, 2, vec![0, 1, 1, 2])
            .unwrap();
        let x = dom.decl_dat_zeros("x", nodes, 1);
        let r = dom.decl_dat_zeros("r", nodes, 1);
        let stage = LoopSpec::new(
            "stage",
            nodes,
            vec![Arg::dat_direct(x, AccessMode::Write)],
            noop,
        );
        let apply = LoopSpec::new(
            "apply",
            edges,
            vec![
                Arg::dat_indirect(r, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(x, e2n, 1, AccessMode::Read),
            ],
            noop,
        );
        let sigs = vec![stage.sig(), apply.sig()];
        // Per-loop rule: x is only modified directly in `stage`, so it
        // contributes nothing there.
        assert!(crate::par::conflict_accesses(dom.maps(), &sigs[0]).is_empty());
        let acc = dag_accesses(dom.maps(), &sigs);
        assert_eq!(acc[0].len(), 1, "direct write of x must appear");
        // Two-chunk chain schedule: stage then apply — one edge.
        let sched = Schedule {
            n_loops: 2,
            kind: ScheduleKind::Tiled { n_tiles: 1 },
            levels: vec![
                Level {
                    chunks: vec![Chunk {
                        pieces: vec![Piece::Range {
                            loop_idx: 0,
                            start: 0,
                            end: 3,
                        }],
                    }],
                },
                Level {
                    chunks: vec![Chunk {
                        pieces: vec![Piece::Range {
                            loop_idx: 1,
                            start: 0,
                            end: 2,
                        }],
                    }],
                },
            ],
            fused: Vec::new(),
        };
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        let dag = ChunkDag::build(&sched, &set_sizes, &acc);
        assert_eq!(dag.deps, vec![0, 1]);
        assert_eq!(dag.succs[0], vec![1]);
    }

    /// Fused pieces union every member loop's accesses: a fused group's
    /// chunk conflicts wherever any member would.
    #[test]
    fn fused_pieces_union_member_accesses() {
        let (dom, spec) = path_fixture(33);
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        let acc = dag_accesses(dom.maps(), &[spec.sig()]);
        let fused_chunk = |s: u32, e: u32| Chunk {
            pieces: vec![Piece::Fused {
                group: 0,
                start: s,
                end: e,
            }],
        };
        let sched = Schedule {
            n_loops: 1,
            kind: ScheduleKind::Tiled { n_tiles: 2 },
            levels: vec![
                Level {
                    chunks: vec![fused_chunk(0, 16)],
                },
                Level {
                    chunks: vec![fused_chunk(16, 32)],
                },
            ],
            fused: vec![crate::schedule::FusedGroup {
                loops: vec![0],
                scratch: Vec::new(),
            }],
        };
        let dag = ChunkDag::build(&sched, &set_sizes, &acc);
        // The two fused halves share node 16 → one edge.
        assert_eq!(dag.deps, vec![0, 1]);
        assert_eq!(dag.n_edges, 1);
    }

    /// DAG edges always point from lower to higher chunk id (acyclic by
    /// construction) and root/depth bookkeeping is consistent.
    #[test]
    fn dag_invariants_hold_on_a_real_coloring() {
        let (dom, spec) = path_fixture(257);
        let (_, dag) = dag_for(&dom, &spec, 8);
        for (p, ss) in dag.succs.iter().enumerate() {
            for &s in ss {
                assert!((s as usize) > p, "edge {p}->{s} must ascend");
                assert!(dag.depth[s as usize] > dag.depth[p]);
            }
        }
        let edge_total: usize = dag.succs.iter().map(Vec::len).sum();
        assert_eq!(edge_total, dag.n_edges);
        let dep_total: u32 = dag.deps.iter().sum();
        assert_eq!(dep_total as usize, dag.n_edges);
        for &r in &dag.roots {
            assert_eq!(dag.depth[r as usize], 1);
        }
    }
}
