//! Shared-memory sparse tiling — the second level of communication
//! avoidance (§2.2 of the paper, after Luporini et al.).
//!
//! Within one memory space, a loop-chain can be executed *tile by tile*:
//! pick a seed partition of the first loop's iteration space into tiles
//! sized for cache, then derive, for every later loop, which tile each
//! of its iterations belongs to, such that executing tiles in increasing
//! id — running each tile's slice of `L_0`, then of `L_1`, … — never
//! reads a value a later tile still has to produce. The derivation is
//! the classic *tile growth*:
//!
//! * each loop stamps every data element its iterations *modify* with
//!   the iteration's tile id, and every element they *read* with a
//!   separate read stamp (max across iterations in both cases);
//! * an `L_{j}` iteration is assigned the max **write stamp** over every
//!   element it touches (read-after-write: by the time its tile runs,
//!   every earlier-tile contribution — including all INC partial sums,
//!   which commute — has landed) joined with the max **read stamp** over
//!   every element it modifies (write-after-read: it must not overwrite
//!   or increment a value an earlier loop's later-tile iteration still
//!   has to read; same-tile is fine because loops run in program order
//!   within a tile).
//!
//! Stamps are kept per (set, element) — coarser than per (dat, element),
//! hence slightly conservative (two independent dats on one set share a
//! stamp), which only ever grows tiles, never breaks them.
//!
//! The payoff is cache locality: a tile's working set (its slice of
//! every dat it touches) stays resident across all `n` loops of the
//! chain instead of being streamed `n` times. The
//! `ablation_tiling` benchmark measures exactly this on the MG-CFD
//! synthetic chain.

use crate::domain::Domain;
use crate::loops::LoopSig;
use crate::seq::run_loop_indexed;
use crate::ChainSpec;

/// A sparse-tiling schedule for one chain over one memory space.
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// Number of tiles.
    pub n_tiles: usize,
    /// `iters[loop][tile]` — iteration ids, in ascending order.
    pub iters: Vec<Vec<Vec<u32>>>,
}

impl TilePlan {
    /// Total iterations scheduled for `loop_idx` (must equal the set
    /// size — every iteration lands in exactly one tile).
    pub fn loop_total(&self, loop_idx: usize) -> usize {
        self.iters[loop_idx].iter().map(Vec::len).sum()
    }

    /// Largest tile of `loop_idx` (load-balance diagnostics).
    pub fn max_tile(&self, loop_idx: usize) -> usize {
        self.iters[loop_idx].iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Seed the first loop's iterations into `n_tiles` contiguous blocks —
/// the default seeding (grid generators emit spatially coherent
/// numbering; pair with a coordinate sort or partitioner assignment for
/// scattered meshes).
pub fn seed_blocks(n_iterations: usize, n_tiles: usize) -> Vec<u32> {
    assert!(n_tiles >= 1);
    let chunk = n_iterations.div_ceil(n_tiles);
    (0..n_iterations).map(|e| (e / chunk) as u32).collect()
}

/// Build the tile-growth schedule over a whole domain. `seed[e]`
/// assigns every iteration of the chain's *first* loop to a tile.
pub fn build_tile_plan(dom: &Domain, sigs: &[LoopSig], seed: &[u32]) -> TilePlan {
    let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
    let ranges: Vec<usize> = sigs.iter().map(|s| dom.set(s.set).size).collect();
    build_tile_plan_raw(&set_sizes, dom.maps(), sigs, &ranges, seed)
}

/// The tile-growth schedule over *raw* local structures: per-set element
/// counts, (possibly localized) maps in domain order, and per-loop
/// iteration ranges `[0, ranges[j])`. This is the form the distributed
/// executor uses to tile each rank's owned-plus-halo region; map entries
/// equal to `u32::MAX` (beyond the built halo depth) are ignored — they
/// are never dereferenced by iterations inside the given ranges.
pub fn build_tile_plan_raw(
    set_sizes: &[usize],
    maps: &[crate::MapData],
    sigs: &[LoopSig],
    ranges: &[usize],
    seed: &[u32],
) -> TilePlan {
    assert!(!sigs.is_empty());
    assert_eq!(ranges.len(), sigs.len());
    assert_eq!(seed.len(), ranges[0]);
    let n_tiles = seed.iter().copied().max().map_or(1, |m| m as usize + 1);

    // Per-set element stamps: the max tile that last modified / read
    // data living on the element. u32::MAX = untouched (imposes no
    // ordering).
    const CLEAN: u32 = u32::MAX;
    let mut wstamp: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![CLEAN; s]).collect();
    let mut rstamp: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![CLEAN; s]).collect();

    let mut iters: Vec<Vec<Vec<u32>>> = Vec::with_capacity(sigs.len());
    for (j, sig) in sigs.iter().enumerate() {
        let n_iter = ranges[j];
        let mut assignment = vec![0u32; n_iter];
        for e in 0..n_iter {
            let mut tile = if j == 0 { seed[e] } else { 0 };
            for arg in &sig.args {
                if let crate::access::Arg::Dat { map, mode, .. } = arg {
                    let (set_idx, elem) = match map {
                        None => (sig.set.idx(), e),
                        Some((m, idx)) => {
                            let md = &maps[m.idx()];
                            let v = md.values[e * md.arity + *idx as usize];
                            if v == u32::MAX {
                                continue; // beyond the built halo depth
                            }
                            (md.to.idx(), v as usize)
                        }
                    };
                    // Read-after-write (and WAW): follow write stamps.
                    let w = wstamp[set_idx][elem];
                    if w != CLEAN {
                        tile = tile.max(w);
                    }
                    // Write-after-read: a modifier must not run before a
                    // tile that still reads the old value.
                    if mode.modifies() {
                        let r = rstamp[set_idx][elem];
                        if r != CLEAN {
                            tile = tile.max(r);
                        }
                    }
                }
            }
            assignment[e] = tile;
        }
        // Re-stamp touched elements with the assigned tiles.
        for e in 0..n_iter {
            let tile = assignment[e];
            for arg in &sig.args {
                if let crate::access::Arg::Dat { map, mode, .. } = arg {
                    let (set_idx, elem) = match map {
                        None => (sig.set.idx(), e),
                        Some((m, idx)) => {
                            let md = &maps[m.idx()];
                            let v = md.values[e * md.arity + *idx as usize];
                            if v == u32::MAX {
                                continue;
                            }
                            (md.to.idx(), v as usize)
                        }
                    };
                    if mode.modifies() {
                        let s = &mut wstamp[set_idx][elem];
                        *s = if *s == CLEAN { tile } else { (*s).max(tile) };
                    }
                    if mode.reads() {
                        let s = &mut rstamp[set_idx][elem];
                        *s = if *s == CLEAN { tile } else { (*s).max(tile) };
                    }
                }
            }
        }
        // Bucket iterations by tile.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
        for (e, &t) in assignment.iter().enumerate() {
            buckets[t as usize].push(e as u32);
        }
        iters.push(buckets);
    }
    TilePlan { n_tiles, iters }
}

/// Execute a chain tile by tile on the global domain (the shared-memory
/// execution of §2.2: all iterations of tile `T_i` across every loop,
/// then tile `T_{i+1}`, …).
pub fn run_chain_tiled(dom: &mut Domain, chain: &ChainSpec, plan: &TilePlan) {
    assert_eq!(plan.iters.len(), chain.len());
    for tile in 0..plan.n_tiles {
        for (j, spec) in chain.loops.iter().enumerate() {
            debug_assert!(!spec.has_reduction());
            run_loop_indexed(dom, spec, &plan.iters[j][tile]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMode, Arg};
    use crate::kernel::Args;
    use crate::loops::LoopSpec;
    use crate::seq;

    fn produce_kernel(args: &Args<'_>) {
        args.inc(0, 0, args.get(2, 0) + 1.0);
        args.inc(1, 0, args.get(3, 0) + 2.0);
    }
    fn consume_kernel(args: &Args<'_>) {
        args.inc(2, 0, args.get(0, 0) + args.get(1, 0));
        args.inc(3, 0, args.get(0, 0) - args.get(1, 0));
    }

    /// A 1D path mesh: easy to reason about tile growth by hand.
    fn path_domain(n_nodes: usize) -> (Domain, LoopSpec, LoopSpec, [crate::DatId; 3]) {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n_nodes);
        let edges = dom.decl_set("edges", n_nodes - 1);
        let vals: Vec<u32> = (0..n_nodes as u32 - 1).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let seedv: Vec<f64> = (0..n_nodes).map(|i| ((i * 3 + 1) % 7) as f64).collect();
        let s = dom.decl_dat("s", nodes, 1, seedv);
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let b = dom.decl_dat_zeros("b", nodes, 1);
        let produce = LoopSpec::new(
            "produce",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(s, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(s, e2n, 1, AccessMode::Read),
            ],
            produce_kernel,
        );
        let consume = LoopSpec::new(
            "consume",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, e2n, 1, AccessMode::Inc),
            ],
            consume_kernel,
        );
        (dom, produce, consume, [s, a, b])
    }

    #[test]
    fn seed_blocks_cover_evenly() {
        let seed = seed_blocks(10, 3);
        assert_eq!(seed.len(), 10);
        assert_eq!(seed.iter().filter(|&&t| t == 0).count(), 4);
        assert_eq!(*seed.iter().max().unwrap(), 2);
        assert_eq!(seed_blocks(4, 8).iter().max().copied(), Some(3));
    }

    /// Every iteration of every loop lands in exactly one tile, and the
    /// second loop's tiles only ever *shrink toward later ids* relative
    /// to the seed (growth pushes iterations to higher tiles).
    #[test]
    fn plan_partitions_iterations() {
        let (dom, produce, consume, _) = path_domain(30);
        let sigs = vec![produce.sig(), consume.sig()];
        let seed = seed_blocks(29, 4);
        let plan = build_tile_plan(&dom, &sigs, &seed);
        assert_eq!(plan.n_tiles, 4);
        for j in 0..2 {
            assert_eq!(plan.loop_total(j), 29, "loop {j}");
            let mut all: Vec<u32> = plan.iters[j].iter().flatten().copied().collect();
            all.sort_unstable();
            let expect: Vec<u32> = (0..29).collect();
            assert_eq!(all, expect);
        }
        // Tile growth on the path: the consumer edge at a tile boundary
        // must move to the later tile (it reads a node the later tile's
        // producer increments).
        let boundary_edge = 7u32; // seed: edges 0..8 tile 0, 8..16 tile 1
        let in_tile0 = plan.iters[1][0].contains(&boundary_edge);
        let in_tile1 = plan.iters[1][1].contains(&boundary_edge);
        assert!(in_tile1 && !in_tile0, "boundary edge must grow forward");
    }

    /// Tiled execution equals plain sequential execution exactly on
    /// integer data, across tile counts.
    #[test]
    fn tiled_matches_sequential() {
        for n_tiles in [1, 2, 3, 7] {
            let (dom, produce, consume, dats) = path_domain(40);
            let chain =
                ChainSpec::new("pc", vec![produce.clone(), consume.clone()], None, &[]).unwrap();

            let mut plain = dom.clone();
            seq::run_loop(&mut plain, &produce);
            seq::run_loop(&mut plain, &consume);

            let mut tiled = dom.clone();
            let seed = seed_blocks(39, n_tiles);
            let plan = build_tile_plan(&tiled, &chain.sigs(), &seed);
            run_chain_tiled(&mut tiled, &chain, &plan);

            for d in dats {
                assert_eq!(
                    plain.dat(d).data,
                    tiled.dat(d).data,
                    "n_tiles = {n_tiles}, dat {}",
                    plain.dat(d).name
                );
            }
        }
    }

    /// Write-after-read: a later loop *writing* what an earlier loop
    /// reads must not run ahead of the reader's tile. Without read
    /// stamps, the writer's iterations would all land in tile 0 and
    /// clobber values tiles 1.. still have to read.
    #[test]
    fn war_hazard_orders_writer_after_readers() {
        let (dom, _produce, _consume, dats) = path_domain(24);
        let [s, a, _b] = dats;
        let e2n = dom.map_by_name("e2n").unwrap();
        let edges = dom.set_by_name("edges").unwrap();
        let nodes = dom.set_by_name("nodes").unwrap();
        // reader: edges, READ s at both ends, INC a at both ends.
        fn reader(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0));
            args.inc(3, 0, args.get(1, 0));
        }
        // clobber: nodes, direct WRITE s — the WAR partner.
        fn clobber(args: &Args<'_>) {
            args.set(0, 0, -1.0);
        }
        let read_loop = LoopSpec::new(
            "reader",
            edges,
            vec![
                Arg::dat_indirect(s, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(s, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(a, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Inc),
            ],
            reader,
        );
        let write_loop = LoopSpec::new(
            "clobber",
            nodes,
            vec![Arg::dat_direct(s, AccessMode::Write)],
            clobber,
        );
        let chain =
            ChainSpec::new("war", vec![read_loop.clone(), write_loop.clone()], None, &[])
                .unwrap();

        let mut plain = dom.clone();
        seq::run_loop(&mut plain, &read_loop);
        seq::run_loop(&mut plain, &write_loop);

        for n_tiles in [2, 4] {
            let mut tiled = dom.clone();
            let seed = seed_blocks(23, n_tiles);
            let plan = build_tile_plan(&tiled, &chain.sigs(), &seed);
            run_chain_tiled(&mut tiled, &chain, &plan);
            assert_eq!(
                plain.dat(a).data,
                tiled.dat(a).data,
                "WAR violated at {n_tiles} tiles"
            );
            assert_eq!(plain.dat(s).data, tiled.dat(s).data);
        }
    }

    /// Direct accesses participate in stamping: a direct-write loop
    /// followed by an indirect reader keeps the reader behind the
    /// writer's tile.
    #[test]
    fn direct_access_orders_tiles() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 12);
        let edges = dom.decl_set("edges", 11);
        let vals: Vec<u32> = (0..11u32).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let b = dom.decl_dat_zeros("b", nodes, 1);
        fn writer(args: &Args<'_>) {
            args.set(0, 0, 5.0);
        }
        fn reader(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0));
            args.inc(3, 0, args.get(1, 0));
        }
        let w = LoopSpec::new("w", nodes, vec![Arg::dat_direct(a, AccessMode::Write)], writer);
        let r = LoopSpec::new(
            "r",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, e2n, 1, AccessMode::Inc),
            ],
            reader,
        );
        let chain = ChainSpec::new("wr", vec![w.clone(), r.clone()], None, &[]).unwrap();
        let mut plain = dom.clone();
        seq::run_loop(&mut plain, &w);
        seq::run_loop(&mut plain, &r);
        let seed = seed_blocks(12, 3);
        let plan = build_tile_plan(&dom, &chain.sigs(), &seed);
        let mut tiled = dom;
        run_chain_tiled(&mut tiled, &chain, &plan);
        assert_eq!(plain.dat(b).data, tiled.dat(b).data);
    }
}
