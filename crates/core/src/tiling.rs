//! Shared-memory sparse tiling — the second level of communication
//! avoidance (§2.2 of the paper, after Luporini et al.).
//!
//! Within one memory space, a loop-chain can be executed *tile by tile*:
//! pick a seed partition of the first loop's iteration space into tiles
//! sized for cache, then derive, for every later loop, which tile each
//! of its iterations belongs to, such that executing tiles in increasing
//! id — running each tile's slice of `L_0`, then of `L_1`, … — never
//! reads a value a later tile still has to produce. The derivation is
//! the classic *tile growth*:
//!
//! * each loop stamps every data element its iterations *modify* with
//!   the iteration's tile id, and every element they *read* with a
//!   separate read stamp (max across iterations in both cases);
//! * an `L_{j}` iteration is assigned the max **write stamp** over every
//!   element it touches (read-after-write: by the time its tile runs,
//!   every earlier-tile contribution — including all INC partial sums,
//!   which commute — has landed) joined with the max **read stamp** over
//!   every element it modifies (write-after-read: it must not overwrite
//!   or increment a value an earlier loop's later-tile iteration still
//!   has to read; same-tile is fine because loops run in program order
//!   within a tile).
//!
//! Stamps are kept per (set, element) — coarser than per (dat, element),
//! hence slightly conservative (two independent dats on one set share a
//! stamp), which only ever grows tiles, never breaks them.
//!
//! The payoff is cache locality: a tile's working set (its slice of
//! every dat it touches) stays resident across all `n` loops of the
//! chain instead of being streamed `n` times. The
//! `ablation_tiling` benchmark measures exactly this on the MG-CFD
//! synthetic chain.

use crate::domain::Domain;
use crate::loops::LoopSig;
use crate::schedule::{bind_chain, run_schedule, run_schedule_threads, Schedule};
use crate::ChainSpec;

/// A sparse-tiling schedule for one chain over one memory space,
/// annotated with inter-tile conflict levels (see
/// [`tile_conflict_levels`]): same-level tiles touch disjoint modified
/// elements, so they may execute concurrently, and conflicting tiles sit
/// on strictly ascending levels in tile-id order, so level-order
/// execution is bitwise identical to the ascending-tile sequential walk.
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// Number of tiles.
    pub n_tiles: usize,
    /// `iters[loop][tile]` — iteration ids, in ascending order.
    pub iters: Vec<Vec<Vec<u32>>>,
    /// Conflict level of every tile (0-based).
    pub levels: Vec<u32>,
    /// Number of conflict levels.
    pub n_levels: usize,
    /// Tile ids per level, ascending.
    pub by_level: Vec<Vec<u32>>,
}

impl TilePlan {
    /// Total iterations scheduled for `loop_idx` (must equal the set
    /// size — every iteration lands in exactly one tile).
    pub fn loop_total(&self, loop_idx: usize) -> usize {
        self.iters[loop_idx].iter().map(Vec::len).sum()
    }

    /// Largest tile of `loop_idx` (load-balance diagnostics).
    pub fn max_tile(&self, loop_idx: usize) -> usize {
        self.iters[loop_idx].iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Seed the first loop's iterations into `n_tiles` spatially contiguous
/// blocks, numbered red-black: even-positioned blocks take tile ids
/// `0..⌈T/2⌉`, odd-positioned blocks take the rest. The default seeding
/// (grid generators emit spatially coherent numbering; pair with a
/// coordinate sort or partitioner assignment for scattered meshes).
///
/// The interleaved numbering matters for the conflict levelization in
/// [`TilePlan::levels`]: spatially adjacent blocks — which always
/// conflict through their shared boundary — land in different id
/// phases, so the order-preserving levelizer packs roughly half the
/// tiles per level instead of degenerating into one ladder level per
/// tile. Conflicting pairs still execute in ascending tile id in both
/// the sequential and the leveled executor, so the bitwise contract is
/// unaffected by the renumbering.
pub fn seed_blocks(n_iterations: usize, n_tiles: usize) -> Vec<u32> {
    assert!(n_tiles >= 1);
    let chunk = n_iterations.div_ceil(n_tiles).max(1);
    (0..n_iterations)
        .map(|e| red_black_id(e / chunk, n_tiles))
        .collect()
}

/// Red-black tile id for spatial block `b` out of `n_tiles`: even
/// blocks occupy ids `0..⌈T/2⌉`, odd blocks the rest.
#[inline]
fn red_black_id(b: usize, n_tiles: usize) -> u32 {
    let evens = n_tiles.div_ceil(2);
    let id = if b.is_multiple_of(2) {
        b / 2
    } else {
        evens + b / 2
    };
    id as u32
}

/// Seed the first loop's iterations into `n_tiles` tiles by a
/// *representative data-side target*: `targets[e]` (e.g. the first node
/// of edge `e`, out of `n_targets` nodes) picks the spatial block, and
/// blocks are numbered red-black as in [`seed_blocks`]. Use this when
/// the iteration set's own numbering is not spatially coherent (e.g.
/// grid generators that group edges by direction) but the target set's
/// is — the resulting tiles follow the target set's geometry, so far
/// fewer tile pairs conflict and the levelizer exposes real
/// parallelism. Targets of `u32::MAX` (beyond the built halo) fall back
/// to an iteration-index block.
pub fn seed_from_targets(targets: &[u32], n_targets: usize, n_tiles: usize) -> Vec<u32> {
    assert!(n_tiles >= 1);
    let chunk = n_targets.div_ceil(n_tiles).max(1);
    let iter_chunk = targets.len().div_ceil(n_tiles).max(1);
    targets
        .iter()
        .enumerate()
        .map(|(e, &t)| {
            let b = if t == u32::MAX {
                e / iter_chunk
            } else {
                (t as usize / chunk).min(n_tiles - 1)
            };
            red_black_id(b, n_tiles)
        })
        .collect()
}

/// Build the tile-growth schedule over a whole domain. `seed[e]`
/// assigns every iteration of the chain's *first* loop to a tile.
pub fn build_tile_plan(dom: &Domain, sigs: &[LoopSig], seed: &[u32]) -> TilePlan {
    let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
    let ranges: Vec<usize> = sigs.iter().map(|s| dom.set(s.set).size).collect();
    build_tile_plan_raw(&set_sizes, dom.maps(), sigs, &ranges, seed)
}

/// The tile-growth schedule over *raw* local structures: per-set element
/// counts, (possibly localized) maps in domain order, and per-loop
/// iteration ranges `[0, ranges[j])`. This is the form the distributed
/// executor uses to tile each rank's owned-plus-halo region; map entries
/// equal to `u32::MAX` (beyond the built halo depth) are ignored — they
/// are never dereferenced by iterations inside the given ranges.
pub fn build_tile_plan_raw(
    set_sizes: &[usize],
    maps: &[crate::MapData],
    sigs: &[LoopSig],
    ranges: &[usize],
    seed: &[u32],
) -> TilePlan {
    assert!(!sigs.is_empty());
    assert_eq!(ranges.len(), sigs.len());
    assert_eq!(seed.len(), ranges[0]);
    let n_tiles = seed.iter().copied().max().map_or(1, |m| m as usize + 1);

    // Per-set element stamps: the max tile that last modified / read
    // data living on the element. u32::MAX = untouched (imposes no
    // ordering).
    const CLEAN: u32 = u32::MAX;
    let mut wstamp: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![CLEAN; s]).collect();
    let mut rstamp: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![CLEAN; s]).collect();

    let mut iters: Vec<Vec<Vec<u32>>> = Vec::with_capacity(sigs.len());
    for (j, sig) in sigs.iter().enumerate() {
        let n_iter = ranges[j];
        let mut assignment = vec![0u32; n_iter];
        for e in 0..n_iter {
            let mut tile = if j == 0 { seed[e] } else { 0 };
            for arg in &sig.args {
                if let crate::access::Arg::Dat { map, mode, .. } = arg {
                    let (set_idx, elem) = match map {
                        None => (sig.set.idx(), e),
                        Some((m, idx)) => {
                            let md = &maps[m.idx()];
                            let v = md.values[e * md.arity + *idx as usize];
                            if v == u32::MAX {
                                continue; // beyond the built halo depth
                            }
                            (md.to.idx(), v as usize)
                        }
                    };
                    // Read-after-write (and WAW): follow write stamps.
                    let w = wstamp[set_idx][elem];
                    if w != CLEAN {
                        tile = tile.max(w);
                    }
                    // Write-after-read: a modifier must not run before a
                    // tile that still reads the old value.
                    if mode.modifies() {
                        let r = rstamp[set_idx][elem];
                        if r != CLEAN {
                            tile = tile.max(r);
                        }
                    }
                }
            }
            assignment[e] = tile;
        }
        // Re-stamp touched elements with the assigned tiles.
        for e in 0..n_iter {
            let tile = assignment[e];
            for arg in &sig.args {
                if let crate::access::Arg::Dat { map, mode, .. } = arg {
                    let (set_idx, elem) = match map {
                        None => (sig.set.idx(), e),
                        Some((m, idx)) => {
                            let md = &maps[m.idx()];
                            let v = md.values[e * md.arity + *idx as usize];
                            if v == u32::MAX {
                                continue;
                            }
                            (md.to.idx(), v as usize)
                        }
                    };
                    if mode.modifies() {
                        let s = &mut wstamp[set_idx][elem];
                        *s = if *s == CLEAN { tile } else { (*s).max(tile) };
                    }
                    if mode.reads() {
                        let s = &mut rstamp[set_idx][elem];
                        *s = if *s == CLEAN { tile } else { (*s).max(tile) };
                    }
                }
            }
        }
        // Bucket iterations by tile.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
        for (e, &t) in assignment.iter().enumerate() {
            buckets[t as usize].push(e as u32);
        }
        iters.push(buckets);
    }
    let (levels, n_levels, by_level) = tile_conflict_levels(set_sizes, maps, sigs, &iters);
    TilePlan {
        n_tiles,
        iters,
        levels,
        n_levels,
        by_level,
    }
}

/// One cross-tile-relevant access of a chain loop: only accesses of dats
/// that *some* loop of the chain modifies can induce inter-tile
/// conflicts (a dat nobody writes is static for the whole chain).
struct TileAccess<'a> {
    map: Option<(&'a [u32], usize, usize)>,
    set: usize,
    reads: bool,
    modifies: bool,
}

impl TileAccess<'_> {
    #[inline]
    fn target(&self, e: usize) -> Option<usize> {
        match self.map {
            Some((values, arity, idx)) => {
                let v = values[e * arity + idx];
                (v != u32::MAX).then_some(v as usize) // beyond built halo depth
            }
            None => Some(e),
        }
    }
}

fn chain_tile_accesses<'a>(
    maps: &'a [crate::MapData],
    sigs: &'a [LoopSig],
) -> Vec<Vec<TileAccess<'a>>> {
    let modified: std::collections::HashSet<usize> = sigs
        .iter()
        .flat_map(|sig| sig.args.iter())
        .filter_map(|arg| match arg {
            crate::access::Arg::Dat { dat, mode, .. } if mode.modifies() => Some(dat.idx()),
            _ => None,
        })
        .collect();
    sigs.iter()
        .map(|sig| {
            sig.args
                .iter()
                .filter_map(|arg| match arg {
                    crate::access::Arg::Dat { dat, map, mode } if modified.contains(&dat.idx()) => {
                        let (map_info, set) = match map {
                            Some((m, idx)) => {
                                let md = &maps[m.idx()];
                                (
                                    Some((md.values.as_slice(), md.arity, *idx as usize)),
                                    md.to.idx(),
                                )
                            }
                            None => (None, sig.set.idx()),
                        };
                        Some(TileAccess {
                            map: map_info,
                            set,
                            reads: mode.reads(),
                            modifies: mode.modifies(),
                        })
                    }
                    _ => None,
                })
                .collect()
        })
        .collect()
}

/// Levelize tiles with the same order-preserving rule
/// [`crate::par::color_blocks_raw`] applies to blocks:
///
/// > `level(t) = 1 + max{ level(t') : t' < t and t' conflicts with t }`
///
/// where two tiles conflict when, across *any* loops of the chain, they
/// touch a common element of a chain-modified dat with at least one of
/// the two accesses modifying. Because a tile's level only ever depends
/// on earlier tiles, every conflicting pair is ordered by level in
/// ascending tile order — the property [`Schedule::from_tile_plan`]
/// turns into the threaded bitwise-identity contract.
fn tile_conflict_levels(
    set_sizes: &[usize],
    maps: &[crate::MapData],
    sigs: &[LoopSig],
    iters: &[Vec<Vec<u32>>],
) -> (Vec<u32>, usize, Vec<Vec<u32>>) {
    let n_tiles = iters[0].len();
    let accesses = chain_tile_accesses(maps, sigs);
    // Highest 1-based level of an earlier modifier / reader touching
    // each element (0 = untouched) — the block-coloring rule, lifted to
    // whole tiles across every loop of the chain.
    let mut last_w: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![0u32; s]).collect();
    let mut last_r: Vec<Vec<u32>> = set_sizes.iter().map(|&s| vec![0u32; s]).collect();
    let mut levels = vec![0u32; n_tiles];
    let mut n_levels = 1usize;
    for t in 0..n_tiles {
        let mut need = 0u32;
        for (j, per_loop) in accesses.iter().enumerate() {
            for &e in &iters[j][t] {
                for a in per_loop {
                    let Some(elem) = a.target(e as usize) else {
                        continue;
                    };
                    need = need.max(last_w[a.set][elem]);
                    if a.modifies {
                        need = need.max(last_r[a.set][elem]);
                    }
                }
            }
        }
        let lv1 = need + 1; // this tile's 1-based level
        levels[t] = lv1 - 1;
        n_levels = n_levels.max(lv1 as usize);
        for (j, per_loop) in accesses.iter().enumerate() {
            for &e in &iters[j][t] {
                for a in per_loop {
                    let Some(elem) = a.target(e as usize) else {
                        continue;
                    };
                    if a.modifies {
                        let s = &mut last_w[a.set][elem];
                        *s = (*s).max(lv1);
                    } else if a.reads {
                        let s = &mut last_r[a.set][elem];
                        *s = (*s).max(lv1);
                    }
                }
            }
        }
    }
    let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); n_levels];
    for (t, &l) in levels.iter().enumerate() {
        by_level[l as usize].push(t as u32);
    }
    (levels, n_levels, by_level)
}

/// Which tiles may execute **while a halo exchange is in flight**
/// (before the wait), given per-loop core ends: the latency-hiding
/// analogue of Alg 2's prewait core, lifted to whole tiles.
///
/// A tile is *eligible* when every iteration of every loop it holds
/// lies inside that loop's core region (`< core_end[j]`) — such
/// iterations read nothing the exchange delivers, by the core-depth
/// construction. Eligibility alone is not enough, though: the split
/// runs eligible tiles *before* the remaining ("post") tiles, which
/// inverts the ascending-tile-id order for any (post `b` < core `t`)
/// pair. The function therefore closes the split under **demotion**: a
/// tile that conflicts (shared element of a chain-modified dat, at
/// least one side modifying) with any lower-id post tile is demoted to
/// post, in one ascending pass — by the time tile `t` is decided, every
/// lower tile's fate is final. For every conflicting pair `a < b` the
/// split then preserves order: both-core and both-post keep their level
/// order; core `a` / post `b` runs `a` first; post `a` / core `b` is
/// exactly what demotion removed. Executing core tiles prewait and
/// post tiles after the wait is thus bitwise identical to the
/// sequential ascending-tile walk.
///
/// Returns one flag per tile; `true` = overlap-eligible (core). Fully
/// deterministic: a pure function of the plan and the core ends.
pub fn overlap_core_tiles(
    set_sizes: &[usize],
    maps: &[crate::MapData],
    sigs: &[LoopSig],
    plan: &TilePlan,
    core_end: &[usize],
) -> Vec<bool> {
    assert_eq!(core_end.len(), plan.iters.len());
    let accesses = chain_tile_accesses(maps, sigs);
    // Elements touched by already-decided post tiles.
    let mut post_w: Vec<Vec<bool>> = set_sizes.iter().map(|&s| vec![false; s]).collect();
    let mut post_r: Vec<Vec<bool>> = set_sizes.iter().map(|&s| vec![false; s]).collect();
    let mut core = vec![false; plan.n_tiles];
    for t in 0..plan.n_tiles {
        let eligible = plan
            .iters
            .iter()
            .zip(core_end)
            .all(|(per_loop, &ce)| per_loop[t].iter().all(|&e| (e as usize) < ce));
        let mut ok = eligible;
        if ok {
            'check: for (j, per_loop) in accesses.iter().enumerate() {
                for &e in &plan.iters[j][t] {
                    for a in per_loop {
                        let Some(elem) = a.target(e as usize) else {
                            continue;
                        };
                        // A lower-id post tile wrote this element (any
                        // access of ours must come after), or read it
                        // and we modify it (WAR).
                        if post_w[a.set][elem] || (a.modifies && post_r[a.set][elem]) {
                            ok = false;
                            break 'check;
                        }
                    }
                }
            }
        }
        core[t] = ok;
        if !ok {
            for (j, per_loop) in accesses.iter().enumerate() {
                for &e in &plan.iters[j][t] {
                    for a in per_loop {
                        let Some(elem) = a.target(e as usize) else {
                            continue;
                        };
                        if a.modifies {
                            post_w[a.set][elem] = true;
                        } else if a.reads {
                            post_r[a.set][elem] = true;
                        }
                    }
                }
            }
        }
    }
    core
}

/// Verify a plan's conflict levels against the raw structure:
/// level/`by_level` consistency, and for every element of a
/// chain-modified dat touched by two different tiles with at least one
/// modifier, strictly ascending levels in tile-id order (race freedom
/// within a level plus the order-preservation the bitwise contract
/// needs). Used by tests and debug assertions.
pub fn is_valid_tile_levels(
    set_sizes: &[usize],
    maps: &[crate::MapData],
    sigs: &[LoopSig],
    plan: &TilePlan,
) -> bool {
    if plan.levels.len() != plan.n_tiles || plan.by_level.len() != plan.n_levels {
        return false;
    }
    let mut seen = vec![false; plan.n_tiles];
    for (l, bucket) in plan.by_level.iter().enumerate() {
        for &t in bucket {
            let t = t as usize;
            if t >= plan.n_tiles || seen[t] || plan.levels[t] as usize != l {
                return false;
            }
            seen[t] = true;
        }
    }
    if !seen.iter().all(|&s| s) {
        return false;
    }
    // Per-element touch lists: (tile, modifies).
    let accesses = chain_tile_accesses(maps, sigs);
    let mut touches: Vec<Vec<Vec<(u32, bool)>>> =
        set_sizes.iter().map(|&s| vec![Vec::new(); s]).collect();
    for t in 0..plan.n_tiles {
        for (j, per_loop) in accesses.iter().enumerate() {
            for &e in &plan.iters[j][t] {
                for a in per_loop {
                    if let Some(elem) = a.target(e as usize) {
                        touches[a.set][elem].push((t as u32, a.modifies));
                    }
                }
            }
        }
    }
    for per_set in &touches {
        for list in per_set {
            for (i, &(t1, w1)) in list.iter().enumerate() {
                for &(t2, w2) in &list[i + 1..] {
                    if t1 == t2 || !(w1 || w2) {
                        continue; // intra-tile or read-read: no conflict
                    }
                    let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
                    if plan.levels[lo as usize] >= plan.levels[hi as usize] {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Execute a chain tile by tile on the global domain (the shared-memory
/// execution of §2.2: all iterations of tile `T_i` across every loop,
/// then tile `T_{i+1}`, …) — lowered through [`Schedule::from_tile_plan`]
/// and walked sequentially. Level order equals ascending-tile order on
/// every conflicting pair, so this is bitwise identical to the classic
/// tile-id walk.
pub fn run_chain_tiled(dom: &mut Domain, chain: &ChainSpec, plan: &TilePlan) {
    assert_eq!(plan.iters.len(), chain.len());
    for spec in &chain.loops {
        debug_assert!(!spec.has_reduction());
    }
    let sched = Schedule::from_tile_plan(plan);
    let (bound, _gbls) = bind_chain(dom, chain);
    run_schedule(&bound, &sched);
}

/// Execute a chain tile by tile with `n_threads` workers: same-level
/// tiles run concurrently, with a barrier between levels. Bitwise
/// identical to [`run_chain_tiled`] for any thread count (the levels
/// order every conflicting tile pair; see [`tile_conflict_levels`]).
///
/// # Panics
/// Panics if any loop of the chain carries global reduction arguments.
pub fn run_chain_tiled_threads(
    dom: &mut Domain,
    chain: &ChainSpec,
    plan: &TilePlan,
    n_threads: usize,
) {
    assert_eq!(plan.iters.len(), chain.len());
    for spec in &chain.loops {
        assert!(
            !spec.has_reduction(),
            "threaded tiled execution does not support global reductions"
        );
    }
    let sched = Schedule::from_tile_plan(plan);
    let (bound, _gbls) = bind_chain(dom, chain);
    run_schedule_threads(&bound, &sched, n_threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMode, Arg};
    use crate::kernel::Args;
    use crate::loops::LoopSpec;
    use crate::seq;

    fn produce_kernel(args: &Args<'_>) {
        args.inc(0, 0, args.get(2, 0) + 1.0);
        args.inc(1, 0, args.get(3, 0) + 2.0);
    }
    fn consume_kernel(args: &Args<'_>) {
        args.inc(2, 0, args.get(0, 0) + args.get(1, 0));
        args.inc(3, 0, args.get(0, 0) - args.get(1, 0));
    }

    /// A 1D path mesh: easy to reason about tile growth by hand.
    fn path_domain(n_nodes: usize) -> (Domain, LoopSpec, LoopSpec, [crate::DatId; 3]) {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", n_nodes);
        let edges = dom.decl_set("edges", n_nodes - 1);
        let vals: Vec<u32> = (0..n_nodes as u32 - 1).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let seedv: Vec<f64> = (0..n_nodes).map(|i| ((i * 3 + 1) % 7) as f64).collect();
        let s = dom.decl_dat("s", nodes, 1, seedv);
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let b = dom.decl_dat_zeros("b", nodes, 1);
        let produce = LoopSpec::new(
            "produce",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(s, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(s, e2n, 1, AccessMode::Read),
            ],
            produce_kernel,
        );
        let consume = LoopSpec::new(
            "consume",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, e2n, 1, AccessMode::Inc),
            ],
            consume_kernel,
        );
        (dom, produce, consume, [s, a, b])
    }

    #[test]
    fn seed_blocks_cover_evenly() {
        let seed = seed_blocks(10, 3);
        assert_eq!(seed.len(), 10);
        assert_eq!(seed.iter().filter(|&&t| t == 0).count(), 4);
        assert_eq!(*seed.iter().max().unwrap(), 2);
        // Red-black numbering: spatial blocks 0..3 map to ids 0,4,1,5
        // (evens first), so 4 iterations over 8 tiles peak at id 5.
        assert_eq!(seed_blocks(4, 8).iter().max().copied(), Some(5));
        // Spatially adjacent blocks always land in different phases.
        let seed = seed_blocks(40, 8);
        for w in seed.windows(2) {
            if w[0] != w[1] {
                assert!((w[0] < 4) != (w[1] < 4), "adjacent blocks {w:?} share a phase");
            }
        }
    }

    /// Every iteration of every loop lands in exactly one tile, and the
    /// second loop's tiles only ever *shrink toward later ids* relative
    /// to the seed (growth pushes iterations to higher tiles).
    #[test]
    fn plan_partitions_iterations() {
        let (dom, produce, consume, _) = path_domain(30);
        let sigs = vec![produce.sig(), consume.sig()];
        let seed = seed_blocks(29, 4);
        let plan = build_tile_plan(&dom, &sigs, &seed);
        assert_eq!(plan.n_tiles, 4);
        for j in 0..2 {
            assert_eq!(plan.loop_total(j), 29, "loop {j}");
            let mut all: Vec<u32> = plan.iters[j].iter().flatten().copied().collect();
            all.sort_unstable();
            let expect: Vec<u32> = (0..29).collect();
            assert_eq!(all, expect);
        }
        // Tile growth on the path: the consumer edge at a tile boundary
        // must move to the later-id tile (it reads a node the later
        // tile's producer increments). Red-black seed: edges 0..8 are
        // tile 0, edges 8..16 are tile 2 (odd spatial block, second
        // phase).
        let boundary_edge = 7u32;
        let in_tile0 = plan.iters[1][0].contains(&boundary_edge);
        let in_tile2 = plan.iters[1][2].contains(&boundary_edge);
        assert!(in_tile2 && !in_tile0, "boundary edge must grow forward");
    }

    /// Tiled execution equals plain sequential execution exactly on
    /// integer data, across tile counts.
    #[test]
    fn tiled_matches_sequential() {
        for n_tiles in [1, 2, 3, 7] {
            let (dom, produce, consume, dats) = path_domain(40);
            let chain =
                ChainSpec::new("pc", vec![produce.clone(), consume.clone()], None, &[]).unwrap();

            let mut plain = dom.clone();
            seq::run_loop(&mut plain, &produce);
            seq::run_loop(&mut plain, &consume);

            let mut tiled = dom.clone();
            let seed = seed_blocks(39, n_tiles);
            let plan = build_tile_plan(&tiled, &chain.sigs(), &seed);
            run_chain_tiled(&mut tiled, &chain, &plan);

            for d in dats {
                assert_eq!(
                    plain.dat(d).data,
                    tiled.dat(d).data,
                    "n_tiles = {n_tiles}, dat {}",
                    plain.dat(d).name
                );
            }
        }
    }

    /// Write-after-read: a later loop *writing* what an earlier loop
    /// reads must not run ahead of the reader's tile. Without read
    /// stamps, the writer's iterations would all land in tile 0 and
    /// clobber values tiles 1.. still have to read.
    #[test]
    fn war_hazard_orders_writer_after_readers() {
        let (dom, _produce, _consume, dats) = path_domain(24);
        let [s, a, _b] = dats;
        let e2n = dom.map_by_name("e2n").unwrap();
        let edges = dom.set_by_name("edges").unwrap();
        let nodes = dom.set_by_name("nodes").unwrap();
        // reader: edges, READ s at both ends, INC a at both ends.
        fn reader(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0));
            args.inc(3, 0, args.get(1, 0));
        }
        // clobber: nodes, direct WRITE s — the WAR partner.
        fn clobber(args: &Args<'_>) {
            args.set(0, 0, -1.0);
        }
        let read_loop = LoopSpec::new(
            "reader",
            edges,
            vec![
                Arg::dat_indirect(s, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(s, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(a, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Inc),
            ],
            reader,
        );
        let write_loop = LoopSpec::new(
            "clobber",
            nodes,
            vec![Arg::dat_direct(s, AccessMode::Write)],
            clobber,
        );
        let chain =
            ChainSpec::new("war", vec![read_loop.clone(), write_loop.clone()], None, &[])
                .unwrap();

        let mut plain = dom.clone();
        seq::run_loop(&mut plain, &read_loop);
        seq::run_loop(&mut plain, &write_loop);

        for n_tiles in [2, 4] {
            let mut tiled = dom.clone();
            let seed = seed_blocks(23, n_tiles);
            let plan = build_tile_plan(&tiled, &chain.sigs(), &seed);
            run_chain_tiled(&mut tiled, &chain, &plan);
            assert_eq!(
                plain.dat(a).data,
                tiled.dat(a).data,
                "WAR violated at {n_tiles} tiles"
            );
            assert_eq!(plain.dat(s).data, tiled.dat(s).data);
        }
    }

    /// On a path chain, spatially adjacent tiles share boundary nodes
    /// and always conflict — but the red-black seed numbering puts
    /// neighbours in different id phases, so the levelizer packs the
    /// even-phase tiles into level 0 and the odd-phase tiles into level
    /// 1 instead of degenerating into a 4-rung ladder. The plan must
    /// also pass the validity checker.
    #[test]
    fn path_tiles_level_red_black() {
        let (dom, produce, consume, _) = path_domain(40);
        let sigs = vec![produce.sig(), consume.sig()];
        let seed = seed_blocks(39, 4);
        let plan = build_tile_plan(&dom, &sigs, &seed);
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        assert!(is_valid_tile_levels(&set_sizes, dom.maps(), &sigs, &plan));
        assert_eq!(plan.levels, vec![0, 0, 1, 1]);
        assert_eq!(plan.n_levels, 2);
        let sched = crate::schedule::Schedule::from_tile_plan(&plan);
        assert!(sched.has_parallelism());
    }

    /// Tiles over disconnected mesh components share one level (full
    /// parallelism), and the schedule lowering reflects it.
    #[test]
    fn disjoint_tiles_share_a_level() {
        // 4 disconnected 2-node components, one edge each.
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 8);
        let edges = dom.decl_set("edges", 4);
        let vals: Vec<u32> = (0..4u32).flat_map(|i| [2 * i, 2 * i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let s = dom.decl_dat_zeros("s", nodes, 1);
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let produce = LoopSpec::new(
            "produce",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(s, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(s, e2n, 1, AccessMode::Read),
            ],
            produce_kernel,
        );
        let sigs = vec![produce.sig()];
        let seed: Vec<u32> = (0..4).collect(); // one edge per tile
        let plan = build_tile_plan(&dom, &sigs, &seed);
        let set_sizes: Vec<usize> = dom.sets().iter().map(|s| s.size).collect();
        assert!(is_valid_tile_levels(&set_sizes, dom.maps(), &sigs, &plan));
        assert_eq!(plan.n_levels, 1);
        let sched = crate::schedule::Schedule::from_tile_plan(&plan);
        assert_eq!(sched.max_level_chunks(), 4);
        assert!(sched.has_parallelism());
    }

    /// Threaded tiled execution is bitwise identical to the sequential
    /// tiled walk (and hence to plain sequential execution) at 1, 2 and
    /// 4 threads — the core-level statement of the extended determinism
    /// contract.
    #[test]
    fn threaded_tiles_bitwise_equal_sequential() {
        for n_tiles in [1, 3, 7] {
            let (dom, produce, consume, dats) = path_domain(60);
            let chain =
                ChainSpec::new("pc", vec![produce.clone(), consume.clone()], None, &[]).unwrap();
            let seed = seed_blocks(59, n_tiles);
            let plan = build_tile_plan(&dom, &chain.sigs(), &seed);

            let mut tiled = dom.clone();
            run_chain_tiled(&mut tiled, &chain, &plan);

            for threads in [1usize, 2, 4] {
                let mut thr = dom.clone();
                run_chain_tiled_threads(&mut thr, &chain, &plan, threads);
                for d in dats {
                    let a: Vec<u64> = tiled.dat(d).data.iter().map(|v| v.to_bits()).collect();
                    let b: Vec<u64> = thr.dat(d).data.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(a, b, "n_tiles={n_tiles} threads={threads}");
                }
            }
        }
    }

    /// Direct accesses participate in stamping: a direct-write loop
    /// followed by an indirect reader keeps the reader behind the
    /// writer's tile.
    #[test]
    fn direct_access_orders_tiles() {
        let mut dom = Domain::new();
        let nodes = dom.decl_set("nodes", 12);
        let edges = dom.decl_set("edges", 11);
        let vals: Vec<u32> = (0..11u32).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("e2n", edges, nodes, 2, vals).unwrap();
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let b = dom.decl_dat_zeros("b", nodes, 1);
        fn writer(args: &Args<'_>) {
            args.set(0, 0, 5.0);
        }
        fn reader(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0));
            args.inc(3, 0, args.get(1, 0));
        }
        let w = LoopSpec::new("w", nodes, vec![Arg::dat_direct(a, AccessMode::Write)], writer);
        let r = LoopSpec::new(
            "r",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, e2n, 1, AccessMode::Inc),
            ],
            reader,
        );
        let chain = ChainSpec::new("wr", vec![w.clone(), r.clone()], None, &[]).unwrap();
        let mut plain = dom.clone();
        seq::run_loop(&mut plain, &w);
        seq::run_loop(&mut plain, &r);
        let seed = seed_blocks(12, 3);
        let plan = build_tile_plan(&dom, &chain.sigs(), &seed);
        let mut tiled = dom;
        run_chain_tiled(&mut tiled, &chain, &plan);
        assert_eq!(plain.dat(b).data, tiled.dat(b).data);
    }
}
