//! Facade crate for the OP2 communication-avoiding (CA) reproduction.
//!
//! Re-exports every sub-crate under a stable path so downstream users can
//! depend on a single crate:
//!
//! ```
//! use op2::core::AccessMode;
//! assert!(AccessMode::Inc.modifies());
//! ```
pub use op2_core as core;
pub use op2_gpu as gpu;
pub use op2_mesh as mesh;
pub use op2_model as model;
pub use op2_partition as partition;
pub use op2_runtime as runtime;

pub use hydra_sim as hydra;
pub use mg_cfd as mgcfd;
