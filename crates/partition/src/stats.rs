//! Counts-only halo statistics — the measured inputs of the paper's
//! analytic model (Tables 2 and 5).
//!
//! The model of §3.2 consumes, per configuration: core iteration counts
//! `S^c`, halo iteration counts `S^1`/`S^h`, the per-neighbour message
//! sizes `m^1`/`m^r`, and the neighbour count `p` — all "only known at
//! runtime after the mesh partitioning". This pipeline computes them
//! exactly, for any rank count, without materialising executable layouts
//! (no localized maps, no dat buffers), so it scales to the full 8M/24M
//! meshes at thousands of ranks. Rank ring computations are independent
//! and run on a small thread pool.

use crate::ownership::Ownership;
use crate::rings::{compute_rings, find_seeds, MapAdj};
use op2_core::Domain;
use std::collections::HashMap;

/// Halo statistics for one rank.
#[derive(Debug, Clone, Default)]
pub struct RankStats {
    /// Owned element counts per set.
    pub owned: Vec<usize>,
    /// `core_prefix[set][k]` = owned elements with inner depth ≥ k
    /// (`k ≤ depth + 1`; index 0 = all owned).
    pub core_prefix: Vec<Vec<usize>>,
    /// `import_levels[set][l-1]` = import ring `l` size.
    pub import_levels: Vec<Vec<usize>>,
    /// `exec_levels[set][l-1]` = the execute-halo (*ieh*-side, Fig 4)
    /// subset of ring `l`: imports reached through backward crossings,
    /// i.e. iterating elements this rank redundantly executes. The
    /// remainder of the ring is the read-only non-execute (*inh*) part.
    pub exec_levels: Vec<Vec<usize>>,
    /// Per neighbour: `recv[set][l-1]` element counts — the building
    /// block of both per-dat (`m^1`) and grouped (`m^r`) message sizes.
    pub neighbors: HashMap<u32, Vec<Vec<usize>>>,
}

impl RankStats {
    /// Number of neighbour ranks (`p` per rank; the model takes the max).
    pub fn n_neighbors(&self) -> usize {
        self.neighbors.len()
    }

    /// Elements of `set` received from `nbr` at ring levels `1..=depth`.
    pub fn recv_elems(&self, nbr: u32, set: usize, depth: usize) -> usize {
        self.neighbors
            .get(&nbr)
            .map(|per_set| per_set[set].iter().take(depth).sum())
            .unwrap_or(0)
    }
}

/// Aggregated halo statistics for one (mesh, partitioner, nparts, depth)
/// configuration.
#[derive(Debug, Clone)]
pub struct HaloStats {
    /// Ranks.
    pub nparts: usize,
    /// Built ring depth.
    pub depth: usize,
    /// Per-rank data.
    pub per_rank: Vec<RankStats>,
}

impl HaloStats {
    /// Maximum neighbour count over ranks — the model's `p`.
    pub fn max_neighbors(&self) -> usize {
        self.per_rank
            .iter()
            .map(RankStats::n_neighbors)
            .max()
            .unwrap_or(0)
    }

    /// Maximum over ranks/neighbours of elements of `set` exchanged at
    /// levels `1..=d` — multiply by the dat payload for message bytes.
    pub fn max_recv_elems(&self, set: usize, d: usize) -> usize {
        self.per_rank
            .iter()
            .flat_map(|r| r.neighbors.keys().map(move |&n| r.recv_elems(n, set, d)))
            .max()
            .unwrap_or(0)
    }

    /// Mean core fraction at inner depth `k` for `set` — a profitability
    /// indicator: small cores mean communication dominates.
    pub fn mean_core_fraction(&self, set: usize, k: usize) -> f64 {
        let (mut core, mut owned) = (0usize, 0usize);
        for r in &self.per_rank {
            core += r.core_prefix[set].get(k).copied().unwrap_or(0);
            owned += r.owned[set];
        }
        if owned == 0 {
            0.0
        } else {
            core as f64 / owned as f64
        }
    }
}

/// Compute halo statistics. `threads` bounds the worker pool (1 = serial).
pub fn collect_stats(dom: &Domain, own: &Ownership, depth: usize, threads: usize) -> HaloStats {
    assert!(depth >= 1);
    let nparts = own.nparts;
    let adj = MapAdj::build(dom);
    let seeds = find_seeds(dom, own);
    let n_sets = dom.n_sets();

    // Owned counts per (rank, set) in one pass.
    let mut owned_counts = vec![vec![0usize; n_sets]; nparts];
    for (sidx, o) in own.owner.iter().enumerate() {
        for &r in o {
            owned_counts[r as usize][sidx] += 1;
        }
    }

    let threads = threads.clamp(1, nparts.max(1));
    let mut per_rank: Vec<RankStats> = vec![RankStats::default(); nparts];
    let chunks: Vec<(usize, &mut [RankStats])> = {
        let mut out = Vec::new();
        let mut rest = per_rank.as_mut_slice();
        let chunk = nparts.div_ceil(threads);
        let mut start = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            out.push((start, head));
            start += take;
            rest = tail;
        }
        out
    };

    std::thread::scope(|scope| {
        for (start, slots) in chunks {
            let adj = &adj;
            let seeds = &seeds;
            let owned_counts = &owned_counts;
            scope.spawn(move || {
                for (off, slot) in slots.iter_mut().enumerate() {
                    let r = (start + off) as u32;
                    let rr = compute_rings(dom, adj, own, seeds, r, depth as u8, depth as u8);
                    let mut stats = RankStats {
                        owned: owned_counts[r as usize].clone(),
                        core_prefix: vec![vec![0usize; depth + 2]; n_sets],
                        import_levels: vec![vec![0usize; depth]; n_sets],
                        exec_levels: vec![vec![0usize; depth]; n_sets],
                        neighbors: HashMap::new(),
                    };
                    for sidx in 0..n_sets {
                        let n_owned = stats.owned[sidx];
                        stats.core_prefix[sidx][0] = n_owned;
                        // Owned elements listed in `inner` are shallow;
                        // prefix[k] = owned − #(inner < k).
                        let mut shallow_below = vec![0usize; depth + 2];
                        for &d in rr.inner[sidx].values() {
                            for k in (d as usize + 1)..=(depth + 1) {
                                shallow_below[k] += 1;
                            }
                        }
                        for k in 1..=(depth + 1) {
                            stats.core_prefix[sidx][k] = n_owned - shallow_below[k];
                        }
                        for (&g, &ring) in &rr.imports[sidx] {
                            stats.import_levels[sidx][ring as usize - 1] += 1;
                            if rr.exec[sidx].contains_key(&g) {
                                stats.exec_levels[sidx][ring as usize - 1] += 1;
                            }
                            let owner = own.owner[sidx][g as usize];
                            let per_set = stats
                                .neighbors
                                .entry(owner)
                                .or_insert_with(|| vec![vec![0usize; depth]; n_sets]);
                            per_set[sidx][ring as usize - 1] += 1;
                        }
                    }
                    *slot = stats;
                }
            });
        }
    });

    HaloStats {
        nparts,
        depth,
        per_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::build_layouts;
    use crate::ownership::derive_ownership;
    use crate::partitioner::rcb_partition;
    use op2_mesh::{Hex3D, Hex3DParams};

    fn setup(n: usize, nparts: usize) -> (Hex3D, Ownership) {
        let m = Hex3D::generate(Hex3DParams::cube(n));
        let base = rcb_partition(m.node_coords(), 3, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base, nparts);
        (m, own)
    }

    /// The counts-only pipeline must agree exactly with the full layout
    /// builder on every shared quantity.
    #[test]
    fn stats_agree_with_layouts() {
        let (m, own) = setup(8, 4);
        let depth = 2;
        let stats = collect_stats(&m.dom, &own, depth, 2);
        let layouts = build_layouts(&m.dom, &own, depth);
        for (r, l) in layouts.iter().enumerate() {
            let s = &stats.per_rank[r];
            assert_eq!(s.n_neighbors(), l.neighbors.len(), "rank {r} neighbours");
            for sidx in 0..m.dom.n_sets() {
                assert_eq!(s.owned[sidx], l.sets[sidx].n_owned);
                assert_eq!(s.core_prefix[sidx], l.sets[sidx].core_prefix);
                assert_eq!(s.import_levels[sidx], l.sets[sidx].import_level_counts);
            }
            for n in &l.neighbors {
                for seg in &n.recv {
                    let per_set = &s.neighbors[&n.rank];
                    let lvl = seg.level as usize - 1;
                    assert!(per_set[seg.set.idx()][lvl] >= seg.len as usize);
                }
                // Totals per neighbour match.
                for sidx in 0..m.dom.n_sets() {
                    let from_segs: usize = n
                        .recv
                        .iter()
                        .filter(|seg| seg.set.idx() == sidx)
                        .map(|seg| seg.len as usize)
                        .sum();
                    let from_stats: usize = s.neighbors[&n.rank][sidx].iter().sum();
                    assert_eq!(from_segs, from_stats, "rank {r} nbr {} set {sidx}", n.rank);
                }
            }
        }
    }

    /// Strong scaling: quadrupling the rank count must shrink owned
    /// counts and (roughly) shrink per-rank core fractions.
    #[test]
    fn core_fraction_falls_with_rank_count() {
        let (m, own4) = setup(12, 4);
        let stats4 = collect_stats(&m.dom, &own4, 2, 2);
        let base16 = rcb_partition(m.node_coords(), 3, 16);
        let own16 = derive_ownership(&m.dom, m.nodes, base16, 16);
        let stats16 = collect_stats(&m.dom, &own16, 2, 2);
        // Edges have depth-0 boundary elements (they read foreign nodes);
        // nodes read nothing, so measure the edge set.
        let f4 = stats4.mean_core_fraction(m.edges.idx(), 1);
        let f16 = stats16.mean_core_fraction(m.edges.idx(), 1);
        assert!(
            f16 < f4,
            "core fraction should fall with more ranks: {f4} -> {f16}"
        );
    }

    /// The execute/non-execute split (Fig 4): edge imports are execute
    /// halo (they contribute increments to owned nodes); node imports
    /// are read-only non-execute halo (nothing maps out of nodes).
    #[test]
    fn exec_nonexec_split_matches_fig4() {
        let (m, own) = setup(8, 2);
        let stats = collect_stats(&m.dom, &own, 2, 1);
        let mut edge_imports = 0;
        for r in &stats.per_rank {
            // Every ring-1 edge import touches an owned node → execute
            // halo. (Edges inherit their first endpoint's owner, so one
            // side of a clean bisection may own every cut edge and
            // import none — totals are asserted below.)
            assert_eq!(
                r.exec_levels[m.edges.idx()][0],
                r.import_levels[m.edges.idx()][0]
            );
            edge_imports += r.import_levels[m.edges.idx()][0];
            // Nodes are pure data here: entirely non-execute.
            assert_eq!(r.exec_levels[m.nodes.idx()][0], 0);
            assert!(r.import_levels[m.nodes.idx()][0] > 0);
            // Boundary elements (bnodes) also execute redundantly where
            // they touch owned nodes.
            assert!(
                r.exec_levels[m.bnodes.idx()][0] <= r.import_levels[m.bnodes.idx()][0]
            );
        }
        assert!(edge_imports > 0, "some rank imports execute-halo edges");
    }

    /// Serial and threaded collection agree.
    #[test]
    fn thread_count_invariant() {
        let (m, own) = setup(8, 5);
        let a = collect_stats(&m.dom, &own, 2, 1);
        let b = collect_stats(&m.dom, &own, 2, 4);
        for (ra, rb) in a.per_rank.iter().zip(&b.per_rank) {
            assert_eq!(ra.owned, rb.owned);
            assert_eq!(ra.core_prefix, rb.core_prefix);
            assert_eq!(ra.import_levels, rb.import_levels);
            assert_eq!(ra.n_neighbors(), rb.n_neighbors());
        }
    }
}
