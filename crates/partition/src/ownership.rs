//! Ownership propagation: from one partitioned base set to every set.
//!
//! OP2 partitions a single set (with ParMETIS / inertial bisection) and
//! derives the owners of all other sets through the declared maps. We do
//! the same: a set with a map *to* an owned set inherits forward (an
//! element is owned by the owner of its first map target); a set only
//! *pointed at* by an owned set inherits in reverse (owned by the owner
//! of the smallest-index element referencing it). Iterates until every
//! set is owned, so chains of inheritance (cbnd → nodes, edges → nodes)
//! resolve in one call.

use op2_core::{Domain, SetId};
use op2_mesh::Csr;

/// Owner rank of every element of every set.
#[derive(Debug, Clone)]
pub struct Ownership {
    /// Number of ranks.
    pub nparts: usize,
    /// `owner[set][element]` = owning rank.
    pub owner: Vec<Vec<u32>>,
}

impl Ownership {
    /// Owner of `elem` of `set`.
    #[inline]
    pub fn of(&self, set: SetId, elem: usize) -> u32 {
        self.owner[set.idx()][elem]
    }

    /// Number of elements of `set` owned by `rank`.
    pub fn count(&self, set: SetId, rank: u32) -> usize {
        self.owner[set.idx()].iter().filter(|&&o| o == rank).count()
    }
}

/// Derive full ownership from a base-set assignment.
///
/// # Panics
/// Panics if some set is unreachable from the base set through any chain
/// of maps (such a set cannot participate in a distributed execution).
pub fn derive_ownership(
    dom: &Domain,
    base: SetId,
    base_owner: Vec<u32>,
    nparts: usize,
) -> Ownership {
    assert_eq!(base_owner.len(), dom.set(base).size);
    debug_assert!(base_owner.iter().all(|&o| (o as usize) < nparts));
    let n_sets = dom.n_sets();
    let mut owner: Vec<Option<Vec<u32>>> = vec![None; n_sets];
    owner[base.idx()] = Some(base_owner);

    loop {
        let mut progressed = false;
        // Forward inheritance: set --map--> owned set.
        for m in dom.maps() {
            if owner[m.from.idx()].is_none() && owner[m.to.idx()].is_some() {
                let to_owner = owner[m.to.idx()].as_ref().unwrap();
                let n_from = dom.set(m.from).size;
                let mut o = Vec::with_capacity(n_from);
                for e in 0..n_from {
                    // First map target decides — deterministic and cheap;
                    // refinement of boundary elements does not change the
                    // asymptotic halo structure.
                    o.push(to_owner[m.values[e * m.arity] as usize]);
                }
                owner[m.from.idx()] = Some(o);
                progressed = true;
            }
        }
        // Reverse inheritance: owned set --map--> set.
        for m in dom.maps() {
            if owner[m.to.idx()].is_none() && owner[m.from.idx()].is_some() {
                let from_owner = owner[m.from.idx()].as_ref().unwrap().clone();
                let n_to = dom.set(m.to).size;
                let rev = Csr::reverse(m, n_to);
                let mut o = vec![u32::MAX; n_to];
                for t in 0..n_to {
                    // Smallest referencing element decides.
                    if let Some(&src) = rev.row(t).iter().min() {
                        o[t] = from_owner[src as usize];
                    }
                }
                // Unreferenced elements: round-robin for balance (they
                // never appear in any halo).
                for (t, ow) in o.iter_mut().enumerate() {
                    if *ow == u32::MAX {
                        *ow = (t % nparts) as u32;
                    }
                }
                owner[m.to.idx()] = Some(o);
                progressed = true;
            }
        }
        if owner.iter().all(|o| o.is_some()) {
            break;
        }
        if !progressed {
            let missing: Vec<&str> = owner
                .iter()
                .enumerate()
                .filter(|(_, o)| o.is_none())
                .map(|(i, _)| dom.sets()[i].name.as_str())
                .collect();
            panic!("sets unreachable from base set via maps: {missing:?}");
        }
    }

    Ownership {
        nparts,
        owner: owner.into_iter().map(Option::unwrap).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::rcb_partition;
    use op2_mesh::Quad2D;

    #[test]
    fn quad_mesh_all_sets_owned() {
        let m = Quad2D::generate(4, 4);
        let base_owner = rcb_partition(&m.dom.dat(m.coords).data, 2, 3);
        let own = derive_ownership(&m.dom, m.nodes, base_owner, 3);
        assert_eq!(own.owner.len(), m.dom.n_sets());
        // Edges inherit from first endpoint.
        let e2n = m.dom.map(m.e2n);
        for e in 0..m.dom.set(m.edges).size {
            let n0 = e2n.values[2 * e] as usize;
            assert_eq!(own.of(m.edges, e), own.of(m.nodes, n0));
        }
        // Cells get owners via reverse inheritance from edges.
        for c in 0..m.dom.set(m.cells).size {
            assert!((own.of(m.cells, c) as usize) < 3);
        }
    }

    #[test]
    fn counts_sum_to_set_size() {
        let m = Quad2D::generate(5, 3);
        let base_owner = rcb_partition(&m.dom.dat(m.coords).data, 2, 4);
        let own = derive_ownership(&m.dom, m.nodes, base_owner, 4);
        for set in [m.nodes, m.edges, m.cells] {
            let total: usize = (0..4).map(|r| own.count(set, r)).sum();
            assert_eq!(total, m.dom.set(set).size);
        }
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn disconnected_set_panics() {
        let mut dom = op2_core::Domain::new();
        let nodes = dom.decl_set("nodes", 4);
        let _orphan = dom.decl_set("orphan", 2);
        derive_ownership(&dom, nodes, vec![0, 0, 1, 1], 2);
    }

    #[test]
    fn reverse_inheritance_uses_min_source() {
        // edges 0:(cells 1), 1:(cells 0) — cell 1 referenced by edge 0.
        let mut dom = op2_core::Domain::new();
        let edges = dom.decl_set("edges", 2);
        let cells = dom.decl_set("cells", 2);
        dom.decl_map("e2c", edges, cells, 1, vec![1, 0]).unwrap();
        // Base = edges: edge 0 → rank 1, edge 1 → rank 0.
        let own = derive_ownership(&dom, edges, vec![1, 0], 2);
        assert_eq!(own.of(cells, 1), 1); // from edge 0
        assert_eq!(own.of(cells, 0), 0); // from edge 1
    }
}
