//! # op2-partition
//!
//! Everything between the global mesh and per-rank execution:
//!
//! * [`partitioner`] — assigns every element of a *base set* to a rank:
//!   recursive coordinate bisection (RCB), recursive inertial bisection
//!   (RIB — Hydra's default partitioner in the paper), and a greedy
//!   k-way graph partitioner standing in for ParMETIS' k-way routine
//!   used in the MG-CFD experiments;
//! * [`ownership`] — propagates ownership from the base set to every
//!   other set through the declared maps (OP2 partitions one set and
//!   derives the rest);
//! * [`rings`] — per-rank halo *rings*: the multi-layered generalisation
//!   of OP2's import/export halos (Figures 5 and 7 of the paper),
//!   computed with a 0-1 BFS over the map graph, plus the mirrored
//!   *inner* rings that define how far a loop-chain's latency-hiding
//!   core must retract per chain position;
//! * [`layout`] — per-rank local index spaces: owned elements ordered by
//!   descending inner depth (so every prewait core is a prefix), import
//!   rings appended level by level (the paper's Figure 6(b)
//!   restructuring), localized maps, and per-neighbour send/receive
//!   lists grouped by (set, level) so the grouped message of Figure 8
//!   packs and unpacks from contiguous ranges;
//! * [`stats`] — a counts-only pipeline producing the halo statistics of
//!   the paper's Tables 2 and 5 (message sizes, neighbour counts, core
//!   and halo iteration counts) for meshes up to the full 8M/24M nodes
//!   without materialising executable layouts;
//! * [`migrate`] — the online-rebalancing planner: re-shards the base
//!   set from per-element cost weights (weighted RCB/RIB/k-way), diffs
//!   old-vs-new ownership into per-peer element move lists, and rebuilds
//!   the rings/halos and grouped-message layouts for the new owners.

// Index-based loops over parallel arrays are the dominant idiom in this
// crate's mesh/partition kernels; iterator-zip rewrites obscure which
// array drives the bound without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod layout;
pub mod migrate;
pub mod ownership;
pub mod partitioner;
pub mod rings;
pub mod stats;

pub use layout::{build_layouts, RankLayout};
pub use migrate::{ownership_from_layouts, plan_migration, MigrationPlan, MoveList, SetMoves};
pub use ownership::{derive_ownership, Ownership};
pub use partitioner::{
    kway_partition, kway_partition_weighted, rcb_partition, rcb_partition_weighted, rib_partition,
    rib_partition_weighted, Partitioner,
};
pub use rings::{compute_rings, RankRings};
pub use stats::{collect_stats, HaloStats};
