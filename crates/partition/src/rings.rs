//! Per-rank halo rings and core depths.
//!
//! The paper's multi-layered halo (Figures 5 and 7) generalises OP2's
//! depth-1 import/export halos to depth `r`: layer `k` contains exactly
//! the foreign elements a rank must receive to execute a loop-chain whose
//! loops redundantly compute `k` layers deep. We compute the layers with
//! a 0-1 BFS over the *map graph*:
//!
//! * every element a rank owns is at ring 0;
//! * crossing a map **forward** (from an iterating element `a` to a data
//!   element `b = M(a, i)`) costs **0**: executing `a` reads `b`, so `b`
//!   is needed at the same depth (clamped to ≥ 1 for foreign elements —
//!   they sit in the halo even when referenced directly from ring 0);
//! * crossing a map **backward** (from data `b` to an iterating `a`
//!   referencing it) costs **1**: for `b`'s value to be complete, every
//!   `a` incrementing it must execute, one layer further out.
//!
//! Two invariants follow (property-tested in `tests/properties.rs`):
//! `ring(b) ≤ max(ring(a), 1)` for every map entry `a → b` (read
//! frontiers are always imported) and `ring(a) ≤ ring(b) + 1` (executing
//! rings ≤ e completes every data element at rings ≤ e − 1).
//!
//! The *inner* (core) depth is the mirror image: the 0-1 distance of an
//! owned element from the foreign region through the *dependency* graph
//! (`a` depends on its targets at cost 0; a data element depends on its
//! updaters at cost 1). A loop at chain position `j` may execute, before
//! the grouped exchange completes, exactly the owned elements with
//! `inner > j` — the latency-hiding core of Alg 1 (`j = 0`) and Alg 2.

use crate::ownership::Ownership;
use op2_core::{Domain, SetId};
use op2_mesh::Csr;
use std::collections::{HashMap, VecDeque};

/// Shared, read-only adjacency for ring computation: every map's forward
/// values plus its reverse CSR. Build once per domain.
pub struct MapAdj<'a> {
    dom: &'a Domain,
    /// `reverse[m]` = CSR from to-set elements back to from-set elements.
    reverse: Vec<Csr>,
}

impl<'a> MapAdj<'a> {
    /// Precompute reverse adjacency for every map.
    pub fn build(dom: &'a Domain) -> Self {
        let reverse = dom
            .maps()
            .iter()
            .map(|m| Csr::reverse(m, dom.set(m.to).size))
            .collect();
        MapAdj { dom, reverse }
    }

    /// Maps *from* `set`, as (map index, arity, values, to-set).
    fn maps_from(&self, set: SetId) -> impl Iterator<Item = (&op2_core::MapData, SetId)> {
        self.dom
            .maps()
            .iter()
            .filter(move |m| m.from == set)
            .map(|m| (m, m.to))
    }

    /// Reverse rows of maps *into* `set`.
    fn maps_into(&self, set: SetId) -> impl Iterator<Item = (&Csr, SetId)> {
        self.dom
            .maps()
            .iter()
            .zip(self.reverse.iter())
            .filter(move |(m, _)| m.to == set)
            .map(|(m, r)| (r, m.from))
    }
}

/// Ring/depth data for one rank.
#[derive(Debug, Clone)]
pub struct RankRings {
    /// The rank.
    pub rank: u32,
    /// `imports[set]` — foreign elements within the requested depth:
    /// `global element id → ring (1-based)`.
    pub imports: Vec<HashMap<u32, u8>>,
    /// `exec[set]` — the subset of imports reached through a *backward*
    /// (cost-1) crossing: iterating elements whose redundant execution
    /// contributes to this rank's data — OP2's import-**execute** halo
    /// (*ieh*/*eeh* side of Fig 4). Imports absent here were reached
    /// only through forward crossings: read-only data, OP2's
    /// **non-execute** halo (*inh*/*enh*).
    pub exec: Vec<HashMap<u32, ()>>,
    /// `inner[set]` — owned elements within the requested core depth:
    /// `global element id → inner depth (0-based; 0 = reads foreign data
    /// directly)`. Owned elements absent from the map are deeper than the
    /// requested bound.
    pub inner: Vec<HashMap<u32, u8>>,
}

/// Per-rank seeds found by one global scan over all maps: boundary-owned
/// elements, i.e. elements incident (in either direction) to an element
/// of another rank.
pub struct Seeds {
    /// `boundary[rank]` = (set, element) pairs owned by `rank` with at
    /// least one foreign incidence.
    pub boundary: Vec<Vec<(u32, u32)>>,
}

/// Scan every map once, recording each rank's boundary-owned elements.
pub fn find_seeds(dom: &Domain, own: &Ownership) -> Seeds {
    let nparts = own.nparts;
    let mut boundary: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nparts];
    // Avoid duplicate inserts with a last-inserted marker per rank/set.
    let mut seen: Vec<HashMap<(u32, u32), ()>> = vec![HashMap::new(); nparts];
    for m in dom.maps() {
        let fo = &own.owner[m.from.idx()];
        let to = &own.owner[m.to.idx()];
        let n_from = dom.set(m.from).size;
        for a in 0..n_from {
            let ra = fo[a];
            for i in 0..m.arity {
                let b = m.values[a * m.arity + i];
                let rb = to[b as usize];
                if ra != rb {
                    let ka = (m.from.0, a as u32);
                    if seen[ra as usize].insert(ka, ()).is_none() {
                        boundary[ra as usize].push(ka);
                    }
                    let kb = (m.to.0, b);
                    if seen[rb as usize].insert(kb, ()).is_none() {
                        boundary[rb as usize].push(kb);
                    }
                }
            }
        }
    }
    Seeds { boundary }
}

/// Compute import rings (to depth `max_ring`) and inner core depths (to
/// depth `max_inner`) for one rank.
pub fn compute_rings(
    dom: &Domain,
    adj: &MapAdj<'_>,
    own: &Ownership,
    seeds: &Seeds,
    rank: u32,
    max_ring: u8,
    max_inner: u8,
) -> RankRings {
    let n_sets = dom.n_sets();
    let mut imports: Vec<HashMap<u32, u8>> = vec![HashMap::new(); n_sets];
    let mut exec: Vec<HashMap<u32, ()>> = vec![HashMap::new(); n_sets];
    let mut inner: Vec<HashMap<u32, u8>> = vec![HashMap::new(); n_sets];
    let my_seeds = &seeds.boundary[rank as usize];

    // ---- Outer 0-1 BFS: import rings over foreign elements. ----
    // Deque of (set, elem, ring); owned elements are implicit ring 0 and
    // only the seeds among them can start shortest paths.
    let mut dq: VecDeque<(u32, u32, u8)> = VecDeque::new();
    for &(s, e) in my_seeds {
        dq.push_back((s, e, 0));
    }
    while let Some((s, e, d)) = dq.pop_front() {
        let set = SetId(s);
        let foreign = own.owner[set.idx()][e as usize] != rank;
        if foreign {
            // Stale queue entry?
            match imports[set.idx()].get(&e) {
                Some(&best) if best < d => continue,
                _ => {}
            }
        }
        // Forward crossings: e iterates, its targets are data (cost 0,
        // clamp to 1 for foreign targets).
        for (m, to) in adj.maps_from(set) {
            let cand = d.max(1);
            if cand > max_ring {
                continue;
            }
            for i in 0..m.arity {
                let b = m.values[e as usize * m.arity + i];
                if own.owner[to.idx()][b as usize] == rank {
                    continue;
                }
                let entry = imports[to.idx()].entry(b).or_insert(u8::MAX);
                if cand < *entry {
                    *entry = cand;
                    // cost-0 edge → front of deque.
                    dq.push_front((to.0, b, cand));
                }
            }
        }
        // Backward crossings: elements referencing e (cost 1). These
        // are iterating elements executed redundantly — the execute
        // halo.
        let cand = d + 1;
        if cand <= max_ring {
            for (rev, from) in adj.maps_into(set) {
                for &a in rev.row(e as usize) {
                    if own.owner[from.idx()][a as usize] == rank {
                        continue;
                    }
                    exec[from.idx()].insert(a, ());
                    let entry = imports[from.idx()].entry(a).or_insert(u8::MAX);
                    if cand < *entry {
                        *entry = cand;
                        dq.push_back((from.0, a, cand));
                    }
                }
            }
        }
    }

    // ---- Inner 0-1 BFS: core depths over owned elements. ----
    // Sources: seeds, with distance depending on crossing direction:
    // an owned element *reading* foreign data is depth 0; an owned
    // element only *written from* foreign elements is depth 1.
    let mut dq: VecDeque<(u32, u32, u8)> = VecDeque::new();
    for &(s, e) in my_seeds {
        let set = SetId(s);
        // Does e read foreign data (forward crossing)?
        let mut d = u8::MAX;
        for (m, to) in adj.maps_from(set) {
            for i in 0..m.arity {
                let b = m.values[e as usize * m.arity + i];
                if own.owner[to.idx()][b as usize] != rank {
                    d = 0;
                }
            }
        }
        if d != 0 {
            // Must then be written from a foreign element.
            d = 1;
        }
        if d <= max_inner {
            let entry = inner[set.idx()].entry(e).or_insert(u8::MAX);
            if d < *entry {
                *entry = d;
                if d == 0 {
                    dq.push_front((s, e, 0));
                } else {
                    dq.push_back((s, e, d));
                }
            }
        }
    }
    while let Some((s, e, d)) = dq.pop_front() {
        let set = SetId(s);
        match inner[set.idx()].get(&e) {
            Some(&best) if best < d => continue,
            _ => {}
        }
        // Dependents of e:
        // (1) owned iterating elements a with e among their targets
        //     depend on e at cost 0;
        for (rev, from) in adj.maps_into(set) {
            for &a in rev.row(e as usize) {
                if own.owner[from.idx()][a as usize] != rank {
                    continue;
                }
                let entry = inner[from.idx()].entry(a).or_insert(u8::MAX);
                if d < *entry {
                    *entry = d;
                    dq.push_front((from.0, a, d));
                }
            }
        }
        // (2) data elements b targeted by e depend on e at cost 1.
        let cand = d + 1;
        if cand <= max_inner {
            for (m, to) in adj.maps_from(set) {
                for i in 0..m.arity {
                    let b = m.values[e as usize * m.arity + i];
                    if own.owner[to.idx()][b as usize] != rank {
                        continue;
                    }
                    let entry = inner[to.idx()].entry(b).or_insert(u8::MAX);
                    if cand < *entry {
                        *entry = cand;
                        dq.push_back((to.0, b, cand));
                    }
                }
            }
        }
    }

    RankRings {
        rank,
        imports,
        exec,
        inner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ownership::derive_ownership;
    use crate::partitioner::rcb_partition;
    use op2_mesh::{Hex3D, Hex3DParams, Quad2D};

    fn quad_rings(nx: usize, ny: usize, nparts: usize, depth: u8) -> (Quad2D, Ownership, Vec<RankRings>) {
        let m = Quad2D::generate(nx, ny);
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base, nparts);
        let adj = MapAdj::build(&m.dom);
        let seeds = find_seeds(&m.dom, &own);
        let rings = (0..nparts as u32)
            .map(|r| compute_rings(&m.dom, &adj, &own, &seeds, r, depth, depth))
            .collect();
        (m, own, rings)
    }

    /// Invariant I1: for every map entry a → b with ring(a) ≤ e, b is
    /// imported at ring ≤ max(ring(a), 1). Invariant I2: for every entry,
    /// ring(a) ≤ ring(b) + 1 within the computed bound.
    #[test]
    fn ring_invariants_hold() {
        let depth = 3u8;
        let (m, own, rings) = quad_rings(8, 8, 4, depth);
        for rr in &rings {
            let ring_of = |set: SetId, e: u32| -> u8 {
                if own.owner[set.idx()][e as usize] == rr.rank {
                    0
                } else {
                    *rr.imports[set.idx()].get(&e).unwrap_or(&u8::MAX)
                }
            };
            for map in m.dom.maps() {
                for a in 0..m.dom.set(map.from).size {
                    let ra = ring_of(map.from, a as u32);
                    for i in 0..map.arity {
                        let b = map.values[a * map.arity + i];
                        let rb = ring_of(map.to, b);
                        if ra < depth {
                            assert!(
                                rb <= ra.max(1),
                                "rank {} map {} a={a}(ring {ra}) b={b}(ring {rb})",
                                rr.rank,
                                map.name
                            );
                        }
                        if rb < depth {
                            assert!(
                                ra <= rb + 1,
                                "rank {} map {} a={a}(ring {ra}) b={b}(ring {rb})",
                                rr.rank,
                                map.name
                            );
                        }
                    }
                }
            }
        }
    }

    /// Every ring-1 import corresponds to OP2's depth-1 halo: touching
    /// the owned region through one map crossing.
    #[test]
    fn ring_one_touches_owned() {
        let (m, own, rings) = quad_rings(6, 6, 3, 2);
        for rr in &rings {
            for (sidx, imp) in rr.imports.iter().enumerate() {
                let set = SetId(sidx as u32);
                for (&e, &ring) in imp {
                    assert_ne!(own.owner[set.idx()][e as usize], rr.rank);
                    if ring == 1 {
                        // One crossing away from owned: via forward or
                        // backward map incidence.
                        let mut touches = false;
                        for map in m.dom.maps() {
                            if map.from == set {
                                for i in 0..map.arity {
                                    let b = map.values[e as usize * map.arity + i];
                                    if own.owner[map.to.idx()][b as usize] == rr.rank {
                                        touches = true;
                                    }
                                }
                            }
                            if map.to == set {
                                for (a, row) in map.values.chunks_exact(map.arity).enumerate() {
                                    if row.contains(&e)
                                        && own.owner[map.from.idx()][a] == rr.rank
                                    {
                                        touches = true;
                                    }
                                }
                            }
                        }
                        // Ring 1 may also be a data element of a ring-1
                        // iterating element (cost-0 from a backward-cost-1
                        // element); accept one extra hop.
                        if !touches {
                            let mut via_ring1 = false;
                            for map in m.dom.maps() {
                                if map.to == set {
                                    for (a, row) in
                                        map.values.chunks_exact(map.arity).enumerate()
                                    {
                                        if row.contains(&e)
                                            && rr.imports[map.from.idx()]
                                                .get(&(a as u32))
                                                .is_some_and(|&r| r == 1)
                                        {
                                            via_ring1 = true;
                                        }
                                    }
                                }
                            }
                            assert!(via_ring1, "rank {} ring-1 import unattached", rr.rank);
                        }
                    }
                }
            }
        }
    }

    /// Inner depth 0 elements read foreign data directly; deeper owned
    /// elements read only owned data.
    #[test]
    fn inner_depth_zero_iff_reads_foreign() {
        let (m, own, rings) = quad_rings(8, 8, 4, 3);
        for rr in &rings {
            // reads_foreign must be judged across *all* maps from a set
            // (an edge can read foreign cells while its nodes are owned).
            for sidx in 0..m.dom.n_sets() {
                let set = SetId(sidx as u32);
                for a in 0..m.dom.sets()[sidx].size {
                    if own.owner[sidx][a] != rr.rank {
                        continue;
                    }
                    let reads_foreign = m.dom.maps().iter().filter(|mp| mp.from == set).any(
                        |mp| {
                            (0..mp.arity).any(|i| {
                                let b = mp.values[a * mp.arity + i];
                                own.owner[mp.to.idx()][b as usize] != rr.rank
                            })
                        },
                    );
                    let depth = rr.inner[sidx].get(&(a as u32)).copied();
                    if reads_foreign {
                        assert_eq!(depth, Some(0), "rank {} set {sidx} elem {a}", rr.rank);
                    } else if let Some(d) = depth {
                        assert!(d >= 1, "rank {} set {sidx} elem {a} depth {d}", rr.rank);
                    }
                }
            }
        }
    }

    /// On a 3D mesh split in two, import ring sizes grow like one layer
    /// of the cut plane per ring.
    #[test]
    fn hex_ring_sizes_match_cut_plane() {
        let n = 8;
        let m = Hex3D::generate(Hex3DParams::cube(n));
        let base = rcb_partition(m.node_coords(), 3, 2);
        let own = derive_ownership(&m.dom, m.nodes, base, 2);
        let adj = MapAdj::build(&m.dom);
        let seeds = find_seeds(&m.dom, &own);
        let rr = compute_rings(&m.dom, &adj, &own, &seeds, 0, 2, 2);
        // Node imports at ring 1: exactly one n×n plane.
        let r1 = rr.imports[m.nodes.idx()]
            .values()
            .filter(|&&r| r == 1)
            .count();
        assert_eq!(r1, n * n);
        let r2 = rr.imports[m.nodes.idx()]
            .values()
            .filter(|&&r| r == 2)
            .count();
        assert_eq!(r2, n * n);
    }
}
