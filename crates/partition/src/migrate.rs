//! Migration planning for online rebalancing.
//!
//! A migration replaces the base-set partition of a live mesh with a
//! new (typically cost-weighted) one and derives everything the runtime
//! needs to switch layouts:
//!
//! 1. the new base assignment comes from one of the weighted
//!    partitioners ([`crate::partitioner`]), fed with per-element cost
//!    weights measured by the runtime's imbalance detector;
//! 2. ownership propagates to every set exactly as at startup
//!    ([`crate::ownership::derive_ownership`]) — the diff against the
//!    *old* ownership yields, per ordered rank pair, the element move
//!    lists the executor must ship;
//! 3. rings, halos, and the grouped-message layouts are rebuilt for the
//!    new owners ([`crate::layout::build_layouts`]).
//!
//! The planner is pure and deterministic: same domain, same old
//! ownership, same new base assignment → same plan on every rank. The
//! runtime-side executor ([`op2-runtime`]'s `rebalance` module) ships
//! the dat slices named by the move lists over the fault-tolerant
//! transport and bumps the layout epoch.

use crate::layout::{build_layouts, RankLayout};
use crate::ownership::{derive_ownership, Ownership};
use op2_core::{Domain, SetId};

/// Elements of one set moving between one rank pair, as ascending
/// global ids — the renumbering table the executor ships alongside the
/// dat slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetMoves {
    /// The set the elements belong to.
    pub set: SetId,
    /// Global element ids changing owner, ascending.
    pub elems: Vec<u32>,
}

/// Every element one rank must ship to one new owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveList {
    /// Old owner (sender).
    pub from: u32,
    /// New owner (receiver).
    pub to: u32,
    /// Per-set move lists, ordered by set id; empty sets omitted.
    pub sets: Vec<SetMoves>,
}

impl MoveList {
    /// Total elements in this move list.
    pub fn elements(&self) -> usize {
        self.sets.iter().map(|s| s.elems.len()).sum()
    }
}

/// A complete, deterministic migration: the new partition, the new
/// per-rank layouts, and the per-peer move lists diffing old against
/// new ownership.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// Rank count (unchanged by migration).
    pub nparts: usize,
    /// New base-set owner per element.
    pub base_owner: Vec<u32>,
    /// New ownership of every set.
    pub ownership: Ownership,
    /// Rebuilt per-rank layouts (rings, halos, grouped-message plans).
    pub layouts: Vec<RankLayout>,
    /// Per ordered (from, to) rank pair with at least one moved
    /// element, sorted by (from, to).
    pub moves: Vec<MoveList>,
}

impl MigrationPlan {
    /// Total elements changing owner, over all sets.
    pub fn elements_moved(&self) -> usize {
        self.moves.iter().map(|m| m.elements()).sum()
    }

    /// Move lists `rank` must send (it is the old owner).
    pub fn outgoing(&self, rank: u32) -> impl Iterator<Item = &MoveList> {
        self.moves.iter().filter(move |m| m.from == rank)
    }

    /// Move lists `rank` will receive (it is the new owner).
    pub fn incoming(&self, rank: u32) -> impl Iterator<Item = &MoveList> {
        self.moves.iter().filter(move |m| m.to == rank)
    }

    /// Payload f64 slots a move list occupies on the wire: one id slot
    /// per element (the renumbering table) plus the dat slices of every
    /// dat declared on its sets.
    pub fn wire_f64s(dom: &Domain, m: &MoveList) -> usize {
        let mut slots = 0;
        for sm in &m.sets {
            let mut per_elem = 1; // the global id
            for d in dom.dats() {
                if d.set == sm.set {
                    per_elem += d.dim;
                }
            }
            slots += sm.elems.len() * per_elem;
        }
        slots
    }
}

/// Reconstruct the [`Ownership`] a set of built layouts describes: each
/// rank's owned elements are the owned prefix of its locals. The inverse
/// of [`build_layouts`]'s input, letting the runtime plan a migration
/// from the layouts alone (drivers rarely keep the original owner
/// vectors around).
pub fn ownership_from_layouts(dom: &Domain, layouts: &[RankLayout]) -> Ownership {
    let nparts = layouts.len();
    let mut owner: Vec<Vec<u32>> = dom.sets().iter().map(|s| vec![u32::MAX; s.size]).collect();
    for l in layouts {
        for (s, sl) in l.sets.iter().enumerate() {
            for &g in &sl.locals[..sl.n_owned] {
                debug_assert_eq!(owner[s][g as usize], u32::MAX, "element owned twice");
                owner[s][g as usize] = l.rank;
            }
        }
    }
    for (s, own) in owner.iter().enumerate() {
        assert!(
            own.iter().all(|&o| o != u32::MAX),
            "set {s}: element with no owner in the given layouts"
        );
    }
    Ownership { nparts, owner }
}

/// Plan a migration of `dom` from `old` ownership to the partition
/// given by `new_base` (an owner per element of `base`), building
/// layouts with `depth` halo layers.
///
/// # Panics
/// Panics if `new_base` has the wrong length or names a rank outside
/// `old.nparts` — the rank count cannot change across a migration.
pub fn plan_migration(
    dom: &Domain,
    base: SetId,
    old: &Ownership,
    new_base: Vec<u32>,
    depth: usize,
) -> MigrationPlan {
    let nparts = old.nparts;
    assert_eq!(new_base.len(), dom.set(base).size);
    assert!(
        new_base.iter().all(|&o| (o as usize) < nparts),
        "migration cannot change the rank count"
    );
    let ownership = derive_ownership(dom, base, new_base.clone(), nparts);
    let layouts = build_layouts(dom, &ownership, depth);

    // Diff old vs new ownership into per-(from, to) move lists. BTreeMap
    // keeps the pair order deterministic.
    let mut moves: std::collections::BTreeMap<(u32, u32), Vec<SetMoves>> =
        std::collections::BTreeMap::new();
    for (s, new_own) in ownership.owner.iter().enumerate() {
        let set = SetId(s as u32);
        let old_own = &old.owner[s];
        for (e, (&was, &now)) in old_own.iter().zip(new_own).enumerate() {
            if was == now {
                continue;
            }
            let sets = moves.entry((was, now)).or_default();
            match sets.iter_mut().find(|sm| sm.set == set) {
                Some(sm) => sm.elems.push(e as u32),
                None => sets.push(SetMoves {
                    set,
                    elems: vec![e as u32],
                }),
            }
        }
    }
    let moves = moves
        .into_iter()
        .map(|((from, to), mut sets)| {
            sets.sort_by_key(|sm| sm.set.idx());
            MoveList { from, to, sets }
        })
        .collect();

    MigrationPlan {
        nparts,
        base_owner: new_base,
        ownership,
        layouts,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{rcb_partition, rcb_partition_weighted};
    use op2_mesh::Quad2D;

    fn quad_ownership(m: &Quad2D, nparts: usize) -> (Vec<u32>, Ownership) {
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base.clone(), nparts);
        (base, own)
    }

    #[test]
    fn identity_migration_moves_nothing() {
        let m = Quad2D::generate(6, 6);
        let (base, own) = quad_ownership(&m, 4);
        let plan = plan_migration(&m.dom, m.nodes, &own, base, 2);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.elements_moved(), 0);
        assert_eq!(plan.layouts.len(), 4);
    }

    #[test]
    fn weighted_reshard_diffs_into_consistent_move_lists() {
        let m = Quad2D::generate(8, 8);
        let (_, old) = quad_ownership(&m, 4);
        let coords = &m.dom.dat(m.coords).data;
        let n = coords.len() / 2;
        // Left half of the mesh becomes 5x hotter.
        let weights: Vec<f64> = (0..n)
            .map(|e| if coords[e * 2] < 3.5 { 5.0 } else { 1.0 })
            .collect();
        let new_base = rcb_partition_weighted(coords, 2, &weights, 4);
        let plan = plan_migration(&m.dom, m.nodes, &old, new_base.clone(), 2);

        assert!(plan.elements_moved() > 0, "skewed weights must move elements");
        // Every moved element's (from, to) matches the ownership diff,
        // every pair is distinct, and ids are ascending.
        for ml in &plan.moves {
            assert_ne!(ml.from, ml.to);
            for sm in &ml.sets {
                assert!(sm.elems.windows(2).all(|w| w[0] < w[1]));
                for &e in &sm.elems {
                    assert_eq!(old.of(sm.set, e as usize), ml.from);
                    assert_eq!(plan.ownership.of(sm.set, e as usize), ml.to);
                }
            }
        }
        // The diff is complete: moved-element count equals the number of
        // elements whose owner differs between the two ownerships.
        let mut expect = 0usize;
        for (s, new_own) in plan.ownership.owner.iter().enumerate() {
            expect += old.owner[s]
                .iter()
                .zip(new_own)
                .filter(|(a, b)| a != b)
                .count();
        }
        assert_eq!(plan.elements_moved(), expect);
        // New layouts describe the new ownership.
        for (r, l) in plan.layouts.iter().enumerate() {
            for (s, sl) in l.sets.iter().enumerate() {
                assert_eq!(
                    sl.n_owned,
                    plan.ownership.count(SetId(s as u32), r as u32),
                    "rank {r} set {s}"
                );
            }
        }
    }

    #[test]
    fn ownership_roundtrips_through_layouts() {
        let m = Quad2D::generate(6, 6);
        let (_, own) = quad_ownership(&m, 3);
        let layouts = build_layouts(&m.dom, &own, 2);
        let back = ownership_from_layouts(&m.dom, &layouts);
        assert_eq!(back.nparts, own.nparts);
        assert_eq!(back.owner, own.owner);
    }

    #[test]
    fn wire_size_counts_ids_and_dat_slices() {
        let m = Quad2D::generate(4, 4);
        let (_, old) = quad_ownership(&m, 2);
        // Swap the two ranks: every element moves.
        let flipped: Vec<u32> = old.owner[m.nodes.idx()].iter().map(|&o| 1 - o).collect();
        let plan = plan_migration(&m.dom, m.nodes, &old, flipped, 2);
        let total: usize = plan
            .moves
            .iter()
            .map(|ml| MigrationPlan::wire_f64s(&m.dom, ml))
            .sum();
        // At minimum one id slot per moved element.
        assert!(total >= plan.elements_moved());
    }

    #[test]
    #[should_panic(expected = "rank count")]
    fn rank_count_change_rejected() {
        let m = Quad2D::generate(4, 4);
        let (_, own) = quad_ownership(&m, 2);
        let bad = vec![2u32; m.dom.set(m.nodes).size];
        plan_migration(&m.dom, m.nodes, &own, bad, 2);
    }
}
