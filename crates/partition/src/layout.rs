//! Per-rank local layouts: the Figure 6(b) restructuring.
//!
//! Each rank's view of a set is one contiguous local index space:
//!
//! ```text
//! [ owned, deepest core first … boundary last | ring 1 | ring 2 | … ]
//! ```
//!
//! * **owned** elements are sorted by descending inner (core) depth, so
//!   the latency-hiding core of a loop at chain position `j` is always a
//!   *prefix* (`core_end(j)`), and the post-exchange remainder a suffix;
//! * **import rings** follow level by level; within a level, elements are
//!   sorted by (owner rank, global id), which makes every neighbour's
//!   contribution to every level a *contiguous range* — the receive side
//!   of the paper's grouped halo message (Figure 8) unpacks with plain
//!   `memcpy`s, and per-level execute ranges need no indirection lists;
//! * **maps are localized**: every map row of a local element is
//!   rewritten to local indices (entries pointing beyond the built depth
//!   hold [`NONLOCAL`] and are never dereferenced by a correct executor).
//!
//! [`build_layouts`] is the inspection phase of Alg 2 (performed globally
//! here — OP2 performs it cooperatively over MPI, but the produced
//! per-rank structures are identical in shape).

use crate::ownership::Ownership;
use crate::rings::{compute_rings, find_seeds, MapAdj};
use op2_core::{Domain, MapData, SetId};
use std::collections::HashMap;

/// Sentinel local index for map entries pointing beyond the built halo
/// depth. Executors must never dereference it; debug executors assert.
pub const NONLOCAL: u32 = u32::MAX;

/// One set's local index space on one rank.
#[derive(Debug, Clone)]
pub struct SetLayout {
    /// Number of owned elements.
    pub n_owned: usize,
    /// `core_prefix[k]` = number of owned elements with inner depth ≥ k
    /// (`core_prefix[0] == n_owned`). Valid for `k ≤ depth + 1`.
    pub core_prefix: Vec<usize>,
    /// Import counts per ring level (index 0 = ring 1).
    pub import_level_counts: Vec<usize>,
    /// Global ids in local order: owned first, then rings.
    pub locals: Vec<u32>,
}

impl SetLayout {
    /// Total local elements (owned + all import rings).
    #[inline]
    pub fn n_local(&self) -> usize {
        self.locals.len()
    }

    /// End (exclusive) of the prewait core for a loop at chain position
    /// `j` (0-based): owned elements with inner depth ≥ j + 1. For `j`
    /// beyond the built depth returns 0 (no safe overlap — everything
    /// runs after the exchange).
    #[inline]
    pub fn core_end(&self, chain_pos: usize) -> usize {
        match self.core_prefix.get(chain_pos + 1) {
            Some(&c) => c,
            None => 0,
        }
    }

    /// End (exclusive) of the execute region for halo extent `ext`:
    /// owned plus rings 1..=ext.
    #[inline]
    pub fn exec_end(&self, ext: usize) -> usize {
        let rings: usize = self
            .import_level_counts
            .iter()
            .take(ext)
            .sum();
        self.n_owned + rings
    }

    /// Start of import ring `level` (1-based) in local numbering.
    #[inline]
    pub fn import_start(&self, level: usize) -> usize {
        self.n_owned
            + self
                .import_level_counts
                .iter()
                .take(level - 1)
                .sum::<usize>()
    }
}

/// What one rank exchanges with one neighbour, segment by segment. Both
/// sides enumerate segments in identical (set, level, global-id) order,
/// so a single packed buffer per neighbour round-trips without headers —
/// exactly the grouped layout of Figure 8.
#[derive(Debug, Clone)]
pub struct NeighborPlan {
    /// The neighbour's rank.
    pub rank: u32,
    /// Send segments: our owned elements (sender-local indices) the
    /// neighbour imports, grouped by (set, level).
    pub send: Vec<SendSegment>,
    /// Receive segments: contiguous ranges of our import region, grouped
    /// by (set, level).
    pub recv: Vec<RecvSegment>,
}

/// Sender-side segment.
#[derive(Debug, Clone)]
pub struct SendSegment {
    /// Which set.
    pub set: SetId,
    /// Ring level at the *receiver*.
    pub level: u8,
    /// Sender-local indices (all owned).
    pub elems: Vec<u32>,
}

/// Receiver-side segment: a contiguous local range.
#[derive(Debug, Clone, Copy)]
pub struct RecvSegment {
    /// Which set.
    pub set: SetId,
    /// Ring level.
    pub level: u8,
    /// First local index.
    pub start: u32,
    /// Element count.
    pub len: u32,
}

/// One rank's complete local structure.
#[derive(Debug, Clone)]
pub struct RankLayout {
    /// This rank.
    pub rank: u32,
    /// Total ranks.
    pub nparts: usize,
    /// Built halo depth (max supported execute extent / chain length).
    pub depth: usize,
    /// Per-set local index spaces.
    pub sets: Vec<SetLayout>,
    /// Localized maps (same ids/order as the global domain).
    pub maps: Vec<MapData>,
    /// Exchange plans, sorted by neighbour rank.
    pub neighbors: Vec<NeighborPlan>,
}

impl RankLayout {
    /// Gather a global dat into this rank's local order.
    pub fn gather_dat(&self, dom: &Domain, dat: op2_core::DatId) -> Vec<f64> {
        let d = dom.dat(dat);
        let sl = &self.sets[d.set.idx()];
        let mut out = Vec::with_capacity(sl.n_local() * d.dim);
        for &g in &sl.locals {
            let g = g as usize;
            out.extend_from_slice(&d.data[g * d.dim..(g + 1) * d.dim]);
        }
        out
    }

    /// Scatter the owned portion of a local dat buffer back to the
    /// global dat (halos are the owners' responsibility).
    pub fn scatter_owned(&self, dom: &mut Domain, dat: op2_core::DatId, local: &[f64]) {
        let (set, dim) = {
            let d = dom.dat(dat);
            (d.set, d.dim)
        };
        let sl = &self.sets[set.idx()];
        let d = dom.dat_mut(dat);
        for (l, &g) in sl.locals[..sl.n_owned].iter().enumerate() {
            let g = g as usize;
            d.data[g * dim..(g + 1) * dim].copy_from_slice(&local[l * dim..(l + 1) * dim]);
        }
    }
}

/// Build every rank's layout — the (global) inspection phase.
///
/// `depth` is the maximum halo extent any loop-chain will request; the
/// paper's configuration file carries the same bound per chain.
pub fn build_layouts(dom: &Domain, own: &Ownership, depth: usize) -> Vec<RankLayout> {
    assert!(depth >= 1 && depth < u8::MAX as usize);
    let nparts = own.nparts;
    let adj = MapAdj::build(dom);
    let seeds = find_seeds(dom, own);
    let n_sets = dom.n_sets();

    // Owned lists per (rank, set) in one global pass.
    let mut owned: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n_sets]; nparts];
    for (sidx, o) in own.owner.iter().enumerate() {
        for (e, &r) in o.iter().enumerate() {
            owned[r as usize][sidx].push(e as u32);
        }
    }

    // Rings per rank.
    let rings: Vec<_> = (0..nparts as u32)
        .map(|r| compute_rings(dom, &adj, own, &seeds, r, depth as u8, depth as u8))
        .collect();

    // Per-rank set layouts + global→local tables.
    struct Built {
        sets: Vec<SetLayout>,
        g2l: Vec<HashMap<u32, u32>>,
        /// Per set: (owner, level, global, local) of every import, in
        /// local order.
        import_meta: Vec<Vec<(u32, u8, u32, u32)>>,
    }
    let mut built: Vec<Built> = Vec::with_capacity(nparts);

    for r in 0..nparts {
        let rr = &rings[r];
        let mut sets = Vec::with_capacity(n_sets);
        let mut g2l: Vec<HashMap<u32, u32>> = Vec::with_capacity(n_sets);
        let mut import_meta = Vec::with_capacity(n_sets);
        for sidx in 0..n_sets {
            // Owned: sort by descending inner depth (missing = deep),
            // then ascending global id.
            let deep = depth as u8 + 1;
            let inner = &rr.inner[sidx];
            let mut own_sorted = owned[r][sidx].clone();
            own_sorted.sort_unstable_by_key(|&g| {
                let d = inner.get(&g).copied().unwrap_or(deep);
                (std::cmp::Reverse(d), g)
            });
            let n_owned = own_sorted.len();
            let mut core_prefix = vec![0usize; depth + 2];
            core_prefix[0] = n_owned;
            for k in 1..=depth + 1 {
                core_prefix[k] = own_sorted
                    .iter()
                    .take_while(|&&g| inner.get(&g).copied().unwrap_or(deep) >= k as u8)
                    .count();
            }

            // Imports: per level, sorted by (owner, global id).
            let set_owner = &own.owner[sidx];
            let mut per_level: Vec<Vec<(u32, u32)>> = vec![Vec::new(); depth];
            for (&g, &ring) in &rr.imports[sidx] {
                debug_assert!((1..=depth as u8).contains(&ring));
                per_level[ring as usize - 1].push((set_owner[g as usize], g));
            }
            for lvl in &mut per_level {
                lvl.sort_unstable();
            }

            let mut locals = own_sorted;
            let mut meta = Vec::new();
            let mut table: HashMap<u32, u32> =
                locals.iter().enumerate().map(|(l, &g)| (g, l as u32)).collect();
            for (li, lvl) in per_level.iter().enumerate() {
                for &(owner_rank, g) in lvl {
                    let local = locals.len() as u32;
                    locals.push(g);
                    table.insert(g, local);
                    meta.push((owner_rank, li as u8 + 1, g, local));
                }
            }
            let import_level_counts = per_level.iter().map(Vec::len).collect();
            sets.push(SetLayout {
                n_owned,
                core_prefix,
                import_level_counts,
                locals,
            });
            g2l.push(table);
            import_meta.push(meta);
        }
        built.push(Built {
            sets,
            g2l,
            import_meta,
        });
    }

    // Localize maps per rank.
    let mut layouts: Vec<RankLayout> = Vec::with_capacity(nparts);
    for (r, b) in built.iter().enumerate() {
        let mut maps = Vec::with_capacity(dom.n_maps());
        for m in dom.maps() {
            let from_locals = &b.sets[m.from.idx()].locals;
            let to_table = &b.g2l[m.to.idx()];
            let mut values = Vec::with_capacity(from_locals.len() * m.arity);
            for &g in from_locals {
                let row = &m.values[g as usize * m.arity..(g as usize + 1) * m.arity];
                for &t in row {
                    values.push(to_table.get(&t).copied().unwrap_or(NONLOCAL));
                }
            }
            maps.push(MapData {
                name: m.name.clone(),
                from: m.from,
                to: m.to,
                arity: m.arity,
                values,
            });
        }
        layouts.push(RankLayout {
            rank: r as u32,
            nparts,
            depth,
            sets: b.sets.clone(),
            maps,
            neighbors: Vec::new(),
        });
    }

    // Exchange plans: receiver side from import_meta (contiguous because
    // levels are sorted by owner), sender side by lookup into the
    // sender's owned table.
    for r in 0..nparts {
        // neighbour → (recv segments, send segments-to-fill-later)
        let mut recv_by: HashMap<u32, Vec<RecvSegment>> = HashMap::new();
        for sidx in 0..n_sets {
            let meta = &built[r].import_meta[sidx];
            let mut i = 0;
            while i < meta.len() {
                let (owner_rank, level, _, start_local) = meta[i];
                let mut j = i;
                while j < meta.len() && meta[j].0 == owner_rank && meta[j].1 == level {
                    j += 1;
                }
                recv_by.entry(owner_rank).or_default().push(RecvSegment {
                    set: SetId(sidx as u32),
                    level,
                    start: start_local,
                    len: (j - i) as u32,
                });
                i = j;
            }
        }
        let mut nbr_ranks: Vec<u32> = recv_by.keys().copied().collect();
        nbr_ranks.sort_unstable();
        for s in nbr_ranks {
            // Sort recv segments by (set, level) — the wire order.
            let mut recv = recv_by.remove(&s).unwrap();
            recv.sort_by_key(|seg| (seg.set, seg.level, seg.start));
            // Build matching send segments on rank s.
            let mut send = Vec::with_capacity(recv.len());
            for seg in &recv {
                let meta = &built[r].import_meta[seg.set.idx()];
                // Elements of this segment, in receiver order (sorted by
                // global id within (owner, level)); sender locals looked
                // up in s's owned table.
                let elems: Vec<u32> = meta
                    .iter()
                    .filter(|(o, l, _, local)| {
                        *o == s && *l == seg.level && {
                            let lr = *local;
                            lr >= seg.start && lr < seg.start + seg.len
                        }
                    })
                    .map(|(_, _, g, _)| {
                        *built[s as usize].g2l[seg.set.idx()]
                            .get(g)
                            .expect("sender owns every exported element")
                    })
                    .collect();
                debug_assert_eq!(elems.len(), seg.len as usize);
                send.push(SendSegment {
                    set: seg.set,
                    level: seg.level,
                    elems,
                });
            }
            // Register on both sides.
            layouts[s as usize]
                .neighbors
                .iter_mut()
                .find(|n| n.rank == r as u32)
                .map(|n| {
                    n.send.extend(send.iter().cloned());
                })
                .unwrap_or_else(|| {
                    layouts[s as usize].neighbors.push(NeighborPlan {
                        rank: r as u32,
                        send,
                        recv: Vec::new(),
                    });
                });
            layouts[r]
                .neighbors
                .iter_mut()
                .find(|n| n.rank == s)
                .map(|n| {
                    n.recv.extend(recv.iter().copied());
                })
                .unwrap_or_else(|| {
                    layouts[r].neighbors.push(NeighborPlan {
                        rank: s,
                        send: Vec::new(),
                        recv,
                    });
                });
        }
    }
    for l in &mut layouts {
        l.neighbors.sort_by_key(|n| n.rank);
        for n in &mut l.neighbors {
            n.send.sort_by_key(|s| (s.set, s.level));
            n.recv.sort_by_key(|s| (s.set, s.level, s.start));
        }
    }
    layouts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ownership::derive_ownership;
    use crate::partitioner::rcb_partition;
    use op2_mesh::Quad2D;

    fn layouts(nx: usize, ny: usize, nparts: usize, depth: usize) -> (Quad2D, Vec<RankLayout>) {
        let m = Quad2D::generate(nx, ny);
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base, nparts);
        let l = build_layouts(&m.dom, &own, depth);
        (m, l)
    }

    #[test]
    fn owned_counts_partition_the_mesh() {
        let (m, ls) = layouts(6, 6, 4, 2);
        for sidx in 0..m.dom.n_sets() {
            let total: usize = ls.iter().map(|l| l.sets[sidx].n_owned).sum();
            assert_eq!(total, m.dom.sets()[sidx].size);
        }
    }

    #[test]
    fn core_prefixes_monotone() {
        let (_, ls) = layouts(8, 8, 4, 3);
        for l in &ls {
            for s in &l.sets {
                assert_eq!(s.core_prefix[0], s.n_owned);
                for k in 1..s.core_prefix.len() {
                    assert!(s.core_prefix[k] <= s.core_prefix[k - 1]);
                }
            }
        }
    }

    #[test]
    fn exec_ranges_nest() {
        let (_, ls) = layouts(8, 8, 4, 3);
        for l in &ls {
            for s in &l.sets {
                assert_eq!(s.exec_end(0), s.n_owned);
                for e in 1..=3 {
                    assert!(s.exec_end(e) >= s.exec_end(e - 1));
                    assert!(s.exec_end(e) <= s.n_local());
                }
                assert_eq!(s.exec_end(3), s.n_local());
            }
        }
    }

    #[test]
    fn send_recv_plans_mirror() {
        let (_, ls) = layouts(6, 6, 3, 2);
        for l in &ls {
            for n in &l.neighbors {
                let peer = &ls[n.rank as usize];
                let back = peer
                    .neighbors
                    .iter()
                    .find(|p| p.rank == l.rank)
                    .expect("neighbour relation must be symmetric in plans");
                // Our recv segments match their send segments in count
                // and sizes, in the same (set, level) order.
                assert_eq!(n.recv.len(), back.send.len());
                for (r, s) in n.recv.iter().zip(back.send.iter()) {
                    assert_eq!(r.set, s.set);
                    assert_eq!(r.level, s.level);
                    assert_eq!(r.len as usize, s.elems.len());
                }
            }
        }
    }

    #[test]
    fn send_elems_are_owned_by_sender() {
        let (_, ls) = layouts(6, 6, 3, 2);
        for l in &ls {
            for n in &l.neighbors {
                for seg in &n.send {
                    let sl = &l.sets[seg.set.idx()];
                    for &e in &seg.elems {
                        assert!((e as usize) < sl.n_owned, "exported element must be owned");
                    }
                }
            }
        }
    }

    #[test]
    fn localized_maps_resolve_within_extent() {
        // Every map row of an element executable at extent <= depth must
        // resolve to local indices (no NONLOCAL in reachable rows).
        let depth = 2;
        let (m, ls) = layouts(8, 8, 4, depth);
        for l in &ls {
            for (mid, lm) in l.maps.iter().enumerate() {
                let gm = &m.dom.maps()[mid];
                let from_layout = &l.sets[gm.from.idx()];
                let exec_end = from_layout.exec_end(depth);
                for e in 0..exec_end {
                    for i in 0..lm.arity {
                        let v = lm.values[e * lm.arity + i];
                        assert_ne!(
                            v, NONLOCAL,
                            "rank {} map {} elem {e} entry {i} unresolved",
                            l.rank, lm.name
                        );
                        assert!((v as usize) < l.sets[gm.to.idx()].n_local());
                    }
                }
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let (mut m, ls) = layouts(5, 5, 3, 2);
        let vals: Vec<f64> = (0..m.dom.set(m.nodes).size * 2).map(|i| i as f64).collect();
        let d = m.dom.decl_dat("v", m.nodes, 2, vals.clone());
        // Each rank gathers, doubles its owned portion, scatters back.
        for l in &ls {
            let mut local = l.gather_dat(&m.dom, d);
            let sl = &l.sets[m.nodes.idx()];
            for x in &mut local[..sl.n_owned * 2] {
                *x *= 2.0;
            }
            l.scatter_owned(&mut m.dom, d, &local);
        }
        let expect: Vec<f64> = vals.iter().map(|v| v * 2.0).collect();
        assert_eq!(m.dom.dat(d).data, expect);
    }

    #[test]
    fn single_rank_has_no_neighbors_and_full_core() {
        let (m, ls) = layouts(4, 4, 1, 2);
        assert_eq!(ls.len(), 1);
        let l = &ls[0];
        assert!(l.neighbors.is_empty());
        for (sidx, s) in l.sets.iter().enumerate() {
            assert_eq!(s.n_owned, m.dom.sets()[sidx].size);
            // Everything is deep interior: core never shrinks.
            assert_eq!(s.core_end(0), s.n_owned);
            assert_eq!(s.core_end(2), s.n_owned);
        }
    }
}
