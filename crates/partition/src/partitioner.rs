//! Base-set partitioners.
//!
//! OP2 partitions one set (nodes, here) and derives the rest. The paper
//! uses two partitioners: ParMETIS' k-way routine for the MG-CFD runs
//! ("to obtain the best partitions per process") and Hydra's default
//! recursive inertial bisection. We provide both roles plus plain RCB:
//!
//! * [`rcb_partition`] — recursive coordinate bisection: split along the
//!   longest bounding-box axis at the median, recurse;
//! * [`rib_partition`] — recursive inertial bisection: split along the
//!   principal axis of the point cloud (dominant eigenvector of the
//!   covariance, found by power iteration), recurse;
//! * [`kway_partition`] — greedy graph growing over the node graph with
//!   balanced part sizes, followed by a boundary-refinement sweep that
//!   moves elements to the neighbouring part hosting most of their
//!   neighbours when this does not unbalance parts — a stand-in for
//!   ParMETIS k-way.
//!
//! Every partitioner supports non-power-of-two part counts and guarantees
//! each part is non-empty whenever `n >= nparts`.

use op2_mesh::Csr;

/// Which partitioner to use — selected by applications and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Recursive coordinate bisection.
    Rcb,
    /// Recursive inertial bisection (Hydra's default in the paper).
    Rib,
    /// Greedy k-way graph partitioner (ParMETIS stand-in).
    KWay,
}

impl Partitioner {
    /// Dispatch to the selected partitioner. `coords` (with `dims`
    /// components per element) drives the geometric methods; `graph`
    /// drives k-way and may be `None` for the geometric ones.
    pub fn partition(
        self,
        coords: &[f64],
        dims: usize,
        graph: Option<&Csr>,
        nparts: usize,
    ) -> Vec<u32> {
        match self {
            Partitioner::Rcb => rcb_partition(coords, dims, nparts),
            Partitioner::Rib => rib_partition(coords, dims, nparts),
            Partitioner::KWay => kway_partition(
                graph.expect("k-way partitioning needs the node graph"),
                nparts,
                3,
            ),
        }
    }

    /// [`Partitioner::partition`] with per-element cost weights: parts
    /// balance total *weight* instead of element count. The online
    /// rebalancer feeds measured per-element costs through this entry
    /// point to re-shard a loaded mesh.
    pub fn partition_weighted(
        self,
        coords: &[f64],
        dims: usize,
        graph: Option<&Csr>,
        weights: &[f64],
        nparts: usize,
    ) -> Vec<u32> {
        match self {
            Partitioner::Rcb => rcb_partition_weighted(coords, dims, weights, nparts),
            Partitioner::Rib => rib_partition_weighted(coords, dims, weights, nparts),
            Partitioner::KWay => kway_partition_weighted(
                graph.expect("k-way partitioning needs the node graph"),
                weights,
                nparts,
                3,
            ),
        }
    }
}

/// Partition by recursive coordinate bisection. `coords` holds `dims`
/// components per element. Returns the owning rank of every element.
pub fn rcb_partition(coords: &[f64], dims: usize, nparts: usize) -> Vec<u32> {
    bisect_partition(coords, dims, None, nparts, SplitAxis::Longest)
}

/// Partition by recursive inertial bisection.
pub fn rib_partition(coords: &[f64], dims: usize, nparts: usize) -> Vec<u32> {
    bisect_partition(coords, dims, None, nparts, SplitAxis::Inertial)
}

/// [`rcb_partition`] with per-element cost weights: each bisection
/// splits at the point where the cumulative *weight* (not the element
/// count) is proportional to the part counts on either side.
pub fn rcb_partition_weighted(
    coords: &[f64],
    dims: usize,
    weights: &[f64],
    nparts: usize,
) -> Vec<u32> {
    bisect_partition(coords, dims, Some(weights), nparts, SplitAxis::Longest)
}

/// [`rib_partition`] with per-element cost weights.
pub fn rib_partition_weighted(
    coords: &[f64],
    dims: usize,
    weights: &[f64],
    nparts: usize,
) -> Vec<u32> {
    bisect_partition(coords, dims, Some(weights), nparts, SplitAxis::Inertial)
}

#[derive(Clone, Copy)]
enum SplitAxis {
    Longest,
    Inertial,
}

fn bisect_partition(
    coords: &[f64],
    dims: usize,
    weights: Option<&[f64]>,
    nparts: usize,
    axis: SplitAxis,
) -> Vec<u32> {
    assert!((1..=3).contains(&dims), "1-3 coordinate dims supported");
    assert!(nparts >= 1, "need at least one part");
    let n = coords.len() / dims;
    assert_eq!(coords.len(), n * dims);
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "one weight per element");
        assert!(
            w.iter().all(|x| x.is_finite() && *x >= 0.0),
            "weights must be finite and non-negative"
        );
    }
    let mut owner = vec![0u32; n];
    let mut ids: Vec<u32> = (0..n as u32).collect();
    recurse(
        coords,
        dims,
        weights,
        &mut ids,
        0,
        nparts as u32,
        &mut owner,
        axis,
    );
    owner
}

/// Split index of the sorted `ids` slice: element-count proportional for
/// uniform weights, cumulative-weight proportional otherwise. Clamped so
/// both sides keep at least one element per part whenever possible.
fn split_point(ids: &[u32], weights: Option<&[f64]>, left_parts: u32, count: u32) -> usize {
    let n = ids.len();
    let proportional = (n as u64 * left_parts as u64 / count as u64) as usize;
    let raw = match weights {
        None => proportional,
        Some(w) => {
            let total: f64 = ids.iter().map(|&e| w[e as usize]).sum();
            if total.is_nan() || total <= 0.0 {
                proportional
            } else {
                let want = total * left_parts as f64 / count as f64;
                let mut acc = 0.0;
                let mut cut = n;
                for (i, &e) in ids.iter().enumerate() {
                    acc += w[e as usize];
                    if acc >= want {
                        // Take the side of the boundary element closer to
                        // the target weight.
                        cut = if acc - want > want - (acc - w[e as usize]) {
                            i
                        } else {
                            i + 1
                        };
                        break;
                    }
                }
                cut
            }
        }
    };
    // Keep every part non-empty when there are enough elements: the left
    // side needs `left_parts` elements, the right `count - left_parts`.
    let right_parts = (count - left_parts) as usize;
    if n >= count as usize {
        raw.clamp(left_parts as usize, n - right_parts)
    } else {
        raw.min(n)
    }
}

/// Assign `ids` to ranks `[first, first + count)`, splitting proportionally
/// (by count, or by cumulative weight when `weights` is given) so uneven
/// part counts stay balanced.
#[allow(clippy::too_many_arguments)]
fn recurse(
    coords: &[f64],
    dims: usize,
    weights: Option<&[f64]>,
    ids: &mut [u32],
    first: u32,
    count: u32,
    owner: &mut [u32],
    axis: SplitAxis,
) {
    if count == 1 {
        for &e in ids.iter() {
            owner[e as usize] = first;
        }
        return;
    }
    let left_parts = count / 2;
    let right_parts = count - left_parts;

    let key: Vec<f64> = match axis {
        SplitAxis::Longest => {
            let ax = longest_axis(coords, dims, ids);
            ids.iter()
                .map(|&e| coords[e as usize * dims + ax])
                .collect()
        }
        SplitAxis::Inertial => {
            let dir = principal_axis(coords, dims, ids);
            ids.iter()
                .map(|&e| {
                    (0..dims)
                        .map(|d| coords[e as usize * dims + d] * dir[d])
                        .sum()
                })
                .collect()
        }
    };
    // Order ids by key using an index sort, then select around `split`.
    let mut order: Vec<u32> = (0..ids.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        key[a as usize]
            .partial_cmp(&key[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ids[a as usize].cmp(&ids[b as usize]))
    });
    let reordered: Vec<u32> = order.iter().map(|&i| ids[i as usize]).collect();
    ids.copy_from_slice(&reordered);

    // Split only after sorting: the weighted cut position depends on the
    // key order of the elements.
    let split = split_point(ids, weights, left_parts, count);
    let (left, right) = ids.split_at_mut(split);
    recurse(coords, dims, weights, left, first, left_parts, owner, axis);
    recurse(
        coords,
        dims,
        weights,
        right,
        first + left_parts,
        right_parts,
        owner,
        axis,
    );
}

fn longest_axis(coords: &[f64], dims: usize, ids: &[u32]) -> usize {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &e in ids {
        for d in 0..dims {
            let v = coords[e as usize * dims + d];
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    (0..dims)
        .max_by(|&a, &b| {
            (hi[a] - lo[a])
                .partial_cmp(&(hi[b] - lo[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0)
}

/// Dominant eigenvector of the covariance matrix of the selected points,
/// by power iteration. Falls back to the longest axis for degenerate
/// clouds (e.g. all points identical).
fn principal_axis(coords: &[f64], dims: usize, ids: &[u32]) -> [f64; 3] {
    let n = ids.len().max(1) as f64;
    let mut mean = [0.0f64; 3];
    for &e in ids {
        for d in 0..dims {
            mean[d] += coords[e as usize * dims + d];
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    // Covariance (symmetric, dims x dims).
    let mut cov = [[0.0f64; 3]; 3];
    for &e in ids {
        let mut p = [0.0f64; 3];
        for d in 0..dims {
            p[d] = coords[e as usize * dims + d] - mean[d];
        }
        for a in 0..dims {
            for b in 0..dims {
                cov[a][b] += p[a] * p[b];
            }
        }
    }
    let mut v = [1.0f64, 0.7, 0.4];
    for _ in 0..30 {
        let mut w = [0.0f64; 3];
        for a in 0..dims {
            for b in 0..dims {
                w[a] += cov[a][b] * v[b];
            }
        }
        let norm = (w[0] * w[0] + w[1] * w[1] + w[2] * w[2]).sqrt();
        if norm < 1e-30 {
            // Degenerate cloud: any direction works.
            let ax = longest_axis(coords, dims, ids);
            let mut unit = [0.0; 3];
            unit[ax] = 1.0;
            return unit;
        }
        for a in 0..3 {
            v[a] = w[a] / norm;
        }
    }
    v
}

/// Greedy k-way graph partitioner over a symmetric adjacency (node
/// graph): grow `nparts` balanced parts by BFS from spread-out seeds,
/// then run `refine_sweeps` boundary sweeps moving elements to the
/// neighbouring part hosting the majority of their neighbours, subject to
/// a ±3% balance constraint.
pub fn kway_partition(graph: &Csr, nparts: usize, refine_sweeps: usize) -> Vec<u32> {
    let n = graph.len();
    assert!(nparts >= 1);
    let mut owner = vec![u32::MAX; n];
    if nparts == 1 {
        owner.fill(0);
        return owner;
    }
    let target = n.div_ceil(nparts);
    let cap = target + (target / 32).max(1); // growth cap per part

    // Seeds: spread through the index space (grid generators emit
    // spatially coherent numbering; for shuffled meshes the refinement
    // sweeps recover locality).
    let mut sizes = vec![0usize; nparts];
    let mut frontier: Vec<std::collections::VecDeque<u32>> =
        (0..nparts).map(|_| std::collections::VecDeque::new()).collect();
    for p in 0..nparts {
        let seed = (p * n / nparts) as u32;
        frontier[p].push_back(seed);
    }

    // Round-robin BFS growth, bounded per part.
    let mut unassigned = n;
    let mut scan = 0usize; // fallback cursor for disconnected leftovers
    while unassigned > 0 {
        let mut progressed = false;
        for p in 0..nparts {
            if sizes[p] >= cap {
                continue;
            }
            // Pop until we find an unassigned vertex.
            while let Some(v) = frontier[p].pop_front() {
                if owner[v as usize] != u32::MAX {
                    continue;
                }
                owner[v as usize] = p as u32;
                sizes[p] += 1;
                unassigned -= 1;
                for &w in graph.row(v as usize) {
                    if owner[w as usize] == u32::MAX {
                        frontier[p].push_back(w);
                    }
                }
                progressed = true;
                break;
            }
        }
        if !progressed {
            // All frontiers exhausted or full: seed the smallest part
            // with the next unassigned vertex.
            while scan < n && owner[scan] != u32::MAX {
                scan += 1;
            }
            if scan >= n {
                break;
            }
            let p = (0..nparts).min_by_key(|&p| sizes[p]).unwrap();
            // Lift the cap if everything is full but vertices remain.
            frontier[p].push_back(scan as u32);
            sizes[p] = sizes[p].min(cap - 1);
        }
    }

    refine(graph, &mut owner, nparts, cap, refine_sweeps);
    owner
}

/// [`kway_partition`] with per-element cost weights: parts grow until
/// they reach their share of the total *weight* rather than an element
/// count, and the refinement sweeps respect the weighted cap. Degenerate
/// weights (all zero) fall back to the unweighted growth.
pub fn kway_partition_weighted(
    graph: &Csr,
    weights: &[f64],
    nparts: usize,
    refine_sweeps: usize,
) -> Vec<u32> {
    let n = graph.len();
    assert_eq!(weights.len(), n, "one weight per element");
    assert!(
        weights.iter().all(|x| x.is_finite() && *x >= 0.0),
        "weights must be finite and non-negative"
    );
    assert!(nparts >= 1);
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // All-zero weights: fall back to the unweighted split.
        return kway_partition(graph, nparts, refine_sweeps);
    }
    let mut owner = vec![u32::MAX; n];
    if nparts == 1 {
        owner.fill(0);
        return owner;
    }
    let max_w = weights.iter().cloned().fold(0.0f64, f64::max);
    let target_w = total / nparts as f64;
    // One boundary element of slack on top of the 3% balance allowance,
    // mirroring the unweighted `cap`.
    let cap_w = target_w * 1.03 + max_w;

    let mut loads = vec![0.0f64; nparts];
    let mut counts = vec![0usize; nparts];
    let mut frontier: Vec<std::collections::VecDeque<u32>> =
        (0..nparts).map(|_| std::collections::VecDeque::new()).collect();
    for (p, f) in frontier.iter_mut().enumerate() {
        f.push_back((p * n / nparts) as u32);
    }

    let mut unassigned = n;
    let mut scan = 0usize;
    while unassigned > 0 {
        let mut progressed = false;
        for p in 0..nparts {
            if loads[p] >= cap_w && counts[p] > 0 {
                continue;
            }
            while let Some(v) = frontier[p].pop_front() {
                if owner[v as usize] != u32::MAX {
                    continue;
                }
                owner[v as usize] = p as u32;
                loads[p] += weights[v as usize];
                counts[p] += 1;
                unassigned -= 1;
                for &w in graph.row(v as usize) {
                    if owner[w as usize] == u32::MAX {
                        frontier[p].push_back(w);
                    }
                }
                progressed = true;
                break;
            }
        }
        if !progressed {
            while scan < n && owner[scan] != u32::MAX {
                scan += 1;
            }
            if scan >= n {
                break;
            }
            // Seed the lightest part with the next unassigned vertex.
            let p = (0..nparts)
                .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
                .unwrap();
            frontier[p].push_back(scan as u32);
        }
    }

    refine_weighted(graph, weights, &mut owner, nparts, cap_w, refine_sweeps);
    owner
}

/// Weighted companion of [`refine`]: boundary moves must keep the
/// destination part under the weighted cap and the source part
/// non-empty.
fn refine_weighted(
    graph: &Csr,
    weights: &[f64],
    owner: &mut [u32],
    nparts: usize,
    cap_w: f64,
    sweeps: usize,
) {
    let n = graph.len();
    let mut loads = vec![0.0f64; nparts];
    let mut counts = vec![0usize; nparts];
    for (v, &o) in owner.iter().enumerate() {
        loads[o as usize] += weights[v];
        counts[o as usize] += 1;
    }
    for _ in 0..sweeps {
        let mut moved = 0usize;
        for v in 0..n {
            let cur = owner[v] as usize;
            let row = graph.row(v);
            if row.iter().all(|&w| owner[w as usize] as usize == cur) {
                continue;
            }
            let mut best_part = cur;
            let mut best_count = row
                .iter()
                .filter(|&&w| owner[w as usize] as usize == cur)
                .count();
            for &w in row {
                let p = owner[w as usize] as usize;
                if p == cur || p == best_part {
                    continue;
                }
                let c = row.iter().filter(|&&x| owner[x as usize] as usize == p).count();
                if c > best_count {
                    best_count = c;
                    best_part = p;
                }
            }
            if best_part != cur && loads[best_part] + weights[v] <= cap_w && counts[cur] > 1 {
                owner[v] = best_part as u32;
                loads[cur] -= weights[v];
                loads[best_part] += weights[v];
                counts[cur] -= 1;
                counts[best_part] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Boundary refinement: move each boundary vertex to the adjacent part
/// with the most of its neighbours if that strictly reduces cut edges and
/// keeps both parts within the cap.
fn refine(graph: &Csr, owner: &mut [u32], nparts: usize, cap: usize, sweeps: usize) {
    let n = graph.len();
    let mut sizes = vec![0usize; nparts];
    for &o in owner.iter() {
        sizes[o as usize] += 1;
    }
    let min_size = 1usize;
    for _ in 0..sweeps {
        let mut moved = 0usize;
        for v in 0..n {
            let cur = owner[v] as usize;
            let row = graph.row(v);
            if row.iter().all(|&w| owner[w as usize] as usize == cur) {
                continue; // interior vertex
            }
            // Count neighbours per adjacent part.
            let mut best_part = cur;
            let mut best_count = row
                .iter()
                .filter(|&&w| owner[w as usize] as usize == cur)
                .count();
            for &w in row {
                let p = owner[w as usize] as usize;
                if p == cur || p == best_part {
                    continue;
                }
                let c = row.iter().filter(|&&x| owner[x as usize] as usize == p).count();
                if c > best_count {
                    best_count = c;
                    best_part = p;
                }
            }
            if best_part != cur && sizes[best_part] < cap && sizes[cur] > min_size {
                owner[v] = best_part as u32;
                sizes[cur] -= 1;
                sizes[best_part] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Number of cut edges (edge list form) under an ownership assignment —
/// the quality metric partitioner tests and benches report.
pub fn cut_edges(edge_list: &[u32], owner: &[u32]) -> usize {
    edge_list
        .chunks_exact(2)
        .filter(|e| owner[e[0] as usize] != owner[e[1] as usize])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_mesh::{Hex3D, Hex3DParams};

    fn check_balance(owner: &[u32], nparts: usize, slack: f64) {
        let mut sizes = vec![0usize; nparts];
        for &o in owner {
            sizes[o as usize] += 1;
        }
        let target = owner.len() as f64 / nparts as f64;
        for (p, &s) in sizes.iter().enumerate() {
            assert!(s > 0, "part {p} empty");
            assert!(
                (s as f64) <= target * (1.0 + slack) + 1.0,
                "part {p} oversized: {s} vs target {target}"
            );
        }
    }

    #[test]
    fn rcb_balanced_and_total() {
        let m = Hex3D::generate(Hex3DParams::cube(8));
        for nparts in [1, 2, 3, 4, 7, 8] {
            let owner = rcb_partition(m.node_coords(), 3, nparts);
            assert_eq!(owner.len(), 512);
            check_balance(&owner, nparts, 0.02);
        }
    }

    #[test]
    fn rib_balanced() {
        let m = Hex3D::generate(Hex3DParams::cube(8));
        for nparts in [2, 5, 8] {
            let owner = rib_partition(m.node_coords(), 3, nparts);
            check_balance(&owner, nparts, 0.02);
        }
    }

    #[test]
    fn rcb_cut_scales_with_surface() {
        // Halving a cube should cut about n² edges, far fewer than random.
        let n = 10;
        let m = Hex3D::generate(Hex3DParams::cube(n));
        let owner = rcb_partition(m.node_coords(), 3, 2);
        let cut = cut_edges(&m.dom.map(m.e2n).values, &owner);
        assert_eq!(cut, n * n, "RCB on a cube must cut exactly one plane");
    }

    #[test]
    fn kway_balanced_and_better_than_stripes() {
        let m = Hex3D::generate(Hex3DParams::cube(10));
        let graph = Csr::node_graph(m.dom.map(m.e2n), 1000);
        let owner = kway_partition(&graph, 8, 4);
        check_balance(&owner, 8, 0.05);
        let cut = cut_edges(&m.dom.map(m.e2n).values, &owner);
        // Stripe partitioning (by index) cuts 7 full planes = 700 edges;
        // a decent k-way should do no worse than ~1.5x the RCB-like cut.
        assert!(cut <= 900, "k-way cut too large: {cut}");
    }

    #[test]
    fn kway_handles_more_parts_than_connected_regions() {
        // A path graph split into 4: every part non-empty.
        let mut dom = op2_core::Domain::new();
        let nodes = dom.decl_set("n", 16);
        let edges = dom.decl_set("e", 15);
        let vals: Vec<u32> = (0..15u32).flat_map(|i| [i, i + 1]).collect();
        let e2n = dom.decl_map("m", edges, nodes, 2, vals).unwrap();
        let graph = Csr::node_graph(dom.map(e2n), 16);
        let owner = kway_partition(&graph, 4, 2);
        check_balance(&owner, 4, 0.3);
    }

    #[test]
    fn single_part_is_identity() {
        let m = Hex3D::generate(Hex3DParams::cube(3));
        let owner = rcb_partition(m.node_coords(), 3, 1);
        assert!(owner.iter().all(|&o| o == 0));
        let graph = Csr::node_graph(m.dom.map(m.e2n), 27);
        assert!(kway_partition(&graph, 1, 0).iter().all(|&o| o == 0));
    }

    fn check_weighted_balance(owner: &[u32], weights: &[f64], nparts: usize, slack: f64) {
        let mut loads = vec![0.0f64; nparts];
        for (e, &o) in owner.iter().enumerate() {
            loads[o as usize] += weights[e];
        }
        let max_w = weights.iter().cloned().fold(0.0f64, f64::max);
        let target = weights.iter().sum::<f64>() / nparts as f64;
        for (p, &l) in loads.iter().enumerate() {
            assert!(
                l <= target * (1.0 + slack) + max_w,
                "part {p} overloaded: {l} vs target {target}"
            );
        }
    }

    #[test]
    fn weighted_rcb_balances_load_not_count() {
        let m = Hex3D::generate(Hex3DParams::cube(8));
        let coords = m.node_coords();
        let n = coords.len() / 3;
        // One octant is 8x hotter than the rest.
        let weights: Vec<f64> = (0..n)
            .map(|e| {
                let hot = coords[e * 3] < 3.5 && coords[e * 3 + 1] < 3.5 && coords[e * 3 + 2] < 3.5;
                if hot {
                    8.0
                } else {
                    1.0
                }
            })
            .collect();
        for nparts in [2, 3, 4, 7] {
            let owner = rcb_partition_weighted(coords, 3, &weights, nparts);
            check_weighted_balance(&owner, &weights, nparts, 0.10);
            let mut sizes = vec![0usize; nparts];
            for &o in &owner {
                sizes[o as usize] += 1;
            }
            assert!(sizes.iter().all(|&s| s > 0), "{nparts} parts: {sizes:?}");
        }
        // Uniform weights reproduce the unweighted split exactly.
        let uniform = vec![1.0; n];
        assert_eq!(
            rcb_partition_weighted(coords, 3, &uniform, 4),
            rcb_partition(coords, 3, 4)
        );
        assert_eq!(
            rib_partition_weighted(coords, 3, &uniform, 4),
            rib_partition(coords, 3, 4)
        );
    }

    #[test]
    fn weighted_kway_balances_load() {
        let m = Hex3D::generate(Hex3DParams::cube(8));
        let n = m.dom.set(m.nodes).size;
        let graph = Csr::node_graph(m.dom.map(m.e2n), n);
        let weights: Vec<f64> = (0..n).map(|e| if e < n / 4 { 6.0 } else { 1.0 }).collect();
        let owner = kway_partition_weighted(&graph, &weights, 4, 4);
        assert_eq!(owner.len(), n);
        assert!(owner.iter().all(|&o| (o as usize) < 4));
        check_weighted_balance(&owner, &weights, 4, 0.25);
        let mut sizes = vec![0usize; 4];
        for &o in &owner {
            sizes[o as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
        // Degenerate all-zero weights fall back to the unweighted grower.
        let zeros = vec![0.0; n];
        assert_eq!(
            kway_partition_weighted(&graph, &zeros, 4, 2),
            kway_partition(&graph, 4, 2)
        );
    }

    #[test]
    fn rib_splits_elongated_cloud_along_length() {
        // Points along a diagonal line: RIB must split by position on the
        // line, i.e. the two parts separate at the middle.
        let n = 100;
        let coords: Vec<f64> = (0..n)
            .flat_map(|i| {
                let t = i as f64;
                [t, 2.0 * t, -t]
            })
            .collect();
        let owner = rib_partition(&coords, 3, 2);
        let first_half = &owner[..50];
        let second_half = &owner[50..];
        assert!(first_half.iter().all(|&o| o == first_half[0]));
        assert!(second_half.iter().all(|&o| o == second_half[0]));
        assert_ne!(first_half[0], second_half[0]);
    }
}
