//! Dataflow-executor equivalence properties.
//!
//! `OP2_EXEC=dataflow` replaces the level-synchronous drain with
//! per-chunk dependency counters over the conflict DAG: a chunk fires
//! the moment its conflicting predecessors are done, spanning level
//! boundaries, with owner-first deques and steal-from-richest work
//! stealing. The contract (DESIGN.md §17) is bitwise identity with the
//! sequential walk at any thread count on every lowering, because the
//! DAG edges cover every conflicting pair in sequential order — so
//! `OP_INC` merges at a location always apply in the same order the
//! sequential loop would.
//!
//! Pinned here, on randomly generated 2-D quad and 3-D tet meshes:
//!
//! 1. **Dataflow == levels == sequential** to the bit at 1/2/4 pool
//!    threads, pinned and unpinned, across the direct, colored and
//!    tiled chain lowerings (proptest).
//! 2. **Engagement**: on a mesh big enough for real parallelism the
//!    trace records dataflow drains with fires covering every chunk —
//!    the property above is not vacuously running the levels fallback.
//! 3. **Fused pieces**: a fusable chain with an elided intermediate
//!    runs fused *and* dataflow-drained, still bit-identical.
//! 4. **Steady state allocates nothing**: after warm-up the steal
//!    queues and dependency counters never grow again.
//! 5. **Chaos**: a rank crash mid-chain under `OP2_EXEC=dataflow`
//!    rolls back and replays to bitwise-identical results.
//!
//! All kernels keep values dyadic rationals so floating-point addition
//! is exact and the sequential reference is bit-comparable.

use op2::core::{seq, AccessMode, Arg, Args, ChainSpec, DatId, Domain, LoopSpec, SetId};
use op2::mesh::{Quad2D, Tet3D};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::exec::{run_chain, run_chain_tiled};
use op2::runtime::{run_distributed_with, ExecMode, FuseMode, RankTrace, RunOptions, Threading};
use proptest::prelude::*;

/// Indirect edge sweep: dyadic flux of the endpoint difference,
/// incremented into both endpoints — the conflicts that force colors
/// (levels) and DAG edges.
fn flux(args: &Args<'_>) {
    let d = (args.get(0, 0) - args.get(1, 0)) * 0.5;
    args.inc(2, 0, d * 0.25);
    args.inc(3, 0, -d * 0.25);
}

/// Direct node relaxation between sweeps; its chunks depend on every
/// Inc chunk covering their nodes, so the DAG crosses level bounds.
fn relax(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) * 0.5 + args.get(1, 0) * 0.25);
    args.set(1, 0, 0.0);
}

struct Case {
    dom: Domain,
    nodes: SetId,
    coords: DatId,
    cdim: usize,
    dats: [DatId; 2],
    chain: ChainSpec,
    sweeps: usize,
}

/// `[flux, relax] × sweeps` over a quad or tet mesh: alternating
/// indirect-Inc and direct levels, the shape the dataflow DAG threads
/// through.
fn build_case(nx: usize, ny: usize, nz: usize, sweeps: usize, tet: bool) -> Case {
    let (mut dom, nodes, edges, e2n, coords, cdim) = if tet {
        let m = Tet3D::generate(nx.min(6), ny.min(6), nz);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 3)
    } else {
        let m = Quad2D::generate(nx, ny);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 2)
    };
    let n = dom.set(nodes).size;
    let s0: Vec<f64> = (0..n).map(|i| ((i * 13 + 7) % 17) as f64).collect();
    let val = dom.decl_dat("val", nodes, 1, s0);
    let res = dom.decl_dat_zeros("res", nodes, 1);
    let mut loops = Vec::with_capacity(2 * sweeps);
    for _ in 0..sweeps {
        loops.push(LoopSpec::new(
            "flux",
            edges,
            vec![
                Arg::dat_indirect(val, e2n, 0, AccessMode::Read),
                Arg::dat_indirect(val, e2n, 1, AccessMode::Read),
                Arg::dat_indirect(res, e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(res, e2n, 1, AccessMode::Inc),
            ],
            flux,
        ));
        loops.push(LoopSpec::new(
            "relax",
            nodes,
            vec![
                Arg::dat_direct(val, AccessMode::Rw),
                Arg::dat_direct(res, AccessMode::Rw),
            ],
            relax,
        ));
    }
    let chain = ChainSpec::new("dataflow_chain", loops, None, &[]).unwrap();
    Case {
        dom,
        nodes,
        coords,
        cdim,
        dats: [val, res],
        chain,
        sweeps,
    }
}

fn layouts_for(case: &Case, nparts: usize) -> Vec<RankLayout> {
    let base = rcb_partition(&case.dom.dat(case.coords).data, case.cdim, nparts);
    let own = derive_ownership(&case.dom, case.nodes, base, nparts);
    // The read-write sweeps ladder the chain's halo extent.
    build_layouts(&case.dom, &own, 2 * case.sweeps)
}

fn bits_of(case: &Case, dom: &Domain) -> Vec<Vec<u64>> {
    case.dats
        .iter()
        .map(|&d| dom.dat(d).data.iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn run_seq(case: &Case, iters: usize) -> Vec<Vec<u64>> {
    let mut dom = case.dom.clone();
    for _ in 0..iters {
        for l in &case.chain.loops {
            seq::run_loop(&mut dom, l);
        }
    }
    bits_of(case, &dom)
}

/// `iters` chain invocations under `exec`/`threading`, through the
/// strict chain entry (direct or colored lowering) or the sparse-tiled
/// one (`n_tiles > 0`).
fn run_case(
    case: &Case,
    layouts: &[RankLayout],
    exec: ExecMode,
    pin: bool,
    threading: Threading,
    n_tiles: usize,
    iters: usize,
) -> (Vec<RankTrace>, Vec<Vec<u64>>) {
    let mut dom = case.dom.clone();
    let opts = RunOptions::default()
        .exec(exec)
        .thread_pin(pin)
        .threading(threading);
    let out = run_distributed_with(&mut dom, layouts, &opts, |env| {
        for _ in 0..iters {
            if n_tiles > 0 {
                run_chain_tiled(env, &case.chain, n_tiles)?;
            } else {
                run_chain(env, &case.chain)?;
            }
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    let bits = bits_of(case, &dom);
    (out.traces, bits)
}

fn dataflow_execs(traces: &[RankTrace]) -> u64 {
    traces
        .iter()
        .flat_map(|t| t.threads.iter())
        .filter(|r| r.dataflow)
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Dataflow == levels == plain sequential, to the bit, on every
    /// lowering: direct (single thread), colored (1/2/4 pool threads,
    /// pinned and unpinned) and tiled.
    #[test]
    fn dataflow_matches_sequential_bitwise(
        nx in 4usize..8,
        ny in 4usize..8,
        nz in 2usize..4,
        sweeps in 2usize..4,
        nparts in 2usize..4,
        n_tiles in 2usize..6,
        tet in proptest::bool::ANY,
        pin in proptest::bool::ANY,
    ) {
        let iters = 3;
        let case = build_case(nx, ny, nz, sweeps, tet);
        let seq_bits = run_seq(&case, iters);
        let layouts = layouts_for(&case, nparts);

        // Levels baseline equals the sequential reference.
        let (_, bits_lv) = run_case(
            &case, &layouts, ExecMode::Levels, false,
            Threading::with_threads(4), 0, iters);
        prop_assert_eq!(&bits_lv, &seq_bits, "levels != seq");

        // Dataflow across thread counts, colored lowering.
        for n_threads in [1usize, 2, 4] {
            let threading = Threading { n_threads, block_size: 4, auto_block: false };
            let (_, bits) = run_case(
                &case, &layouts, ExecMode::Dataflow, pin, threading, 0, iters);
            prop_assert_eq!(&bits, &seq_bits, "dataflow @{} != seq", n_threads);
        }

        // Tiled lowering under dataflow.
        for n_threads in [1usize, 2, 4] {
            let threading = Threading { n_threads, block_size: 4, auto_block: false };
            let (_, bits) = run_case(
                &case, &layouts, ExecMode::Dataflow, pin, threading, n_tiles, iters);
            prop_assert_eq!(&bits, &seq_bits, "dataflow tiled @{} != seq", n_threads);
        }

        // `auto` picks whichever arm the profit model prefers — the
        // result must be bit-identical either way.
        let (_, bits) = run_case(
            &case, &layouts, ExecMode::Auto, pin,
            Threading::with_threads(4), 0, iters);
        prop_assert_eq!(&bits, &seq_bits, "auto != seq");
    }
}

/// Deterministic engagement check: on a mesh big enough for real
/// parallelism the dataflow drain actually runs (trace records it),
/// fires every chunk exactly once in aggregate, and reports a critical
/// path no deeper than the barrier count it replaced.
#[test]
fn dataflow_engages_and_fires_every_chunk() {
    let iters = 3;
    let case = build_case(16, 16, 2, 3, false);
    let seq_bits = run_seq(&case, iters);
    let layouts = layouts_for(&case, 2);
    let threading = Threading { n_threads: 4, block_size: 8, auto_block: false };

    let (traces, bits) = run_case(
        &case, &layouts, ExecMode::Dataflow, true, threading, 0, iters);
    assert_eq!(bits, seq_bits);
    assert!(dataflow_execs(&traces) > 0, "no dataflow drain recorded");
    for t in &traces {
        for r in t.threads.iter().filter(|r| r.dataflow) {
            let fires: u64 = r.fires.iter().sum();
            assert_eq!(
                fires, r.n_chunks as u64,
                "rank {}: fires != chunks in `{}`", t.rank, r.name
            );
            assert!(
                r.crit_path <= r.n_levels * 100,
                "rank {}: absurd critical path", t.rank
            );
            assert!(r.crit_path >= 1, "rank {}: empty critical path", t.rank);
        }
    }
}

/// A fusable chain (direct produce → consume with an elided scratch
/// intermediate) under `OP2_EXEC=dataflow`: fused pieces are DAG nodes
/// like any other chunk, and the result stays bit-identical.
#[test]
fn dataflow_over_fused_pieces_bitwise() {
    fn stage(args: &Args<'_>) {
        args.set(1, 0, args.get(0, 0) * 0.5 + 1.0);
    }
    fn apply(args: &Args<'_>) {
        args.set(1, 0, args.get(1, 0) + args.get(0, 0) * 0.25);
    }
    let m = Quad2D::generate(12, 12);
    let mut dom = m.dom;
    let n = dom.set(m.nodes).size;
    let s0: Vec<f64> = (0..n).map(|i| ((i * 11 + 3) % 13) as f64).collect();
    let d0 = dom.decl_dat("d0", m.nodes, 1, s0);
    let tmp = dom.decl_dat_zeros("tmp", m.nodes, 1);
    let chain = ChainSpec::new(
        "fuse_df",
        vec![
            LoopSpec::new(
                "stage",
                m.nodes,
                vec![
                    Arg::dat_direct(d0, AccessMode::Read),
                    Arg::dat_direct(tmp, AccessMode::Write),
                ],
                stage,
            ),
            LoopSpec::new(
                "apply",
                m.nodes,
                vec![
                    Arg::dat_direct(tmp, AccessMode::Read),
                    Arg::dat_direct(d0, AccessMode::Rw),
                ],
                apply,
            ),
        ],
        None,
        &[],
    )
    .unwrap()
    .with_scratch(&[tmp]);

    let iters = 3;
    let seq_bits: Vec<u64> = {
        let mut d = dom.clone();
        for _ in 0..iters {
            for l in &chain.loops {
                seq::run_loop(&mut d, l);
            }
        }
        d.dat(d0).data.iter().map(|x| x.to_bits()).collect()
    };
    let base = rcb_partition(&dom.dat(m.coords).data, 2, 2);
    let own = derive_ownership(&dom, m.nodes, base, 2);
    let layouts = build_layouts(&dom, &own, 2);

    let mut d = dom.clone();
    let opts = RunOptions::default()
        .fuse(FuseMode::On)
        .exec(ExecMode::Dataflow)
        .threading(Threading { n_threads: 4, block_size: 8, auto_block: false });
    let out = run_distributed_with(&mut d, &layouts, &opts, |env| {
        for _ in 0..iters {
            run_chain(env, &chain)?;
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    let bits: Vec<u64> = d.dat(d0).data.iter().map(|x| x.to_bits()).collect();
    assert_eq!(bits, seq_bits, "fused dataflow != seq");
    for t in &out.traces {
        assert!(t.plan.fused_pieces > 0, "rank {} ran no fused pieces", t.rank);
    }
}

/// Satellite acceptance: the steal queues and dependency counters
/// reach a fixed point after warm-up — repeat dataflow drains allocate
/// nothing.
#[test]
fn dataflow_steady_state_allocates_nothing() {
    let case = build_case(12, 12, 2, 3, false);
    let layouts = layouts_for(&case, 2);
    let mut dom = case.dom.clone();
    let opts = RunOptions::default()
        .exec(ExecMode::Dataflow)
        .thread_pin(true)
        .threading(Threading { n_threads: 4, block_size: 8, auto_block: false });
    let out = run_distributed_with(&mut dom, &layouts, &opts, |env| {
        // Two warm-up invocations: the first builds plan + DAG and
        // sizes the scratch, the second settles the dirty class.
        for _ in 0..2 {
            run_chain(env, &case.chain)?;
        }
        let warm = env.threads.dataflow.allocs();
        for _ in 0..4 {
            run_chain(env, &case.chain)?;
        }
        assert_eq!(
            env.threads.dataflow.allocs(),
            warm,
            "rank {}: steal queues allocated at steady state",
            env.rank
        );
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    assert!(dataflow_execs(&out.traces) > 0, "no dataflow drain recorded");
}

/// Chaos: crashes under the dataflow executor recover bitwise (gated
/// like `tests/recovery.rs` behind the default-on `chaos` feature).
#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use op2::runtime::{
        run_supervised, Boundary, BoundaryKind, FaultPlan, FaultSpec, SuperviseOptions,
    };

    /// The loop-boundary crash site needs a standalone loop between
    /// the chains; a trivial dyadic bump plays that role.
    fn bump(args: &Args<'_>) {
        args.set(0, 0, args.get(0, 0) + 1.0);
    }

    /// Kill rank 1 at a chain boundary and once mid-program at a loop
    /// boundary while `OP2_EXEC=dataflow` is live, at 1 and 4 threads.
    /// Every variant must roll back exactly once and replay to results
    /// bitwise equal to the sequential reference.
    #[test]
    fn crash_under_dataflow_recovers_bitwise() {
        let iters = 3;
        let sites = [(BoundaryKind::Chain, 1u64), (BoundaryKind::Loop, 1)];
        for n_threads in [1usize, 4] {
            for &(kind, k) in &sites {
                let case = build_case(10, 8, 2, 2, false);
                let bump_loop = LoopSpec::new(
                    "bump",
                    case.nodes,
                    vec![Arg::dat_direct(case.dats[0], AccessMode::Rw)],
                    bump,
                );
                let seq_bits = {
                    let mut d = case.dom.clone();
                    for _ in 0..iters {
                        seq::run_loop(&mut d, &bump_loop);
                        for l in &case.chain.loops {
                            seq::run_loop(&mut d, l);
                        }
                    }
                    bits_of(&case, &d)
                };
                let layouts = layouts_for(&case, 4);
                let spec = FaultSpec::default()
                    .with_crash_site(1, Boundary::new(kind, k));
                let run = RunOptions::with_faults(FaultPlan::new(spec))
                    .with_threads(n_threads)
                    .checkpoint_every(1)
                    .exec(ExecMode::Dataflow)
                    .thread_pin(true);
                let mut dom = case.dom.clone();
                let out = run_supervised(
                    &mut dom,
                    &layouts,
                    &SuperviseOptions::new(run),
                    |env| {
                        for _ in 0..iters {
                            op2::runtime::exec::run_loop(env, &bump_loop)?;
                            run_chain(env, &case.chain)?;
                        }
                        Ok(())
                    },
                )
                .unwrap_or_else(|e| {
                    panic!("threads {n_threads}, {kind:?} {k}: supervision failed: {e}")
                });
                assert!(out.all_ok(), "failures: {:?}", out.failures());
                assert_eq!(
                    bits_of(&case, &dom),
                    seq_bits,
                    "threads {n_threads}, {kind:?} boundary {k}: diverged from reference"
                );
                for t in &out.traces {
                    assert_eq!(t.recovery.attempts, 2, "rank {}", t.rank);
                    assert_eq!(t.recovery.rollbacks, 1, "rank {}", t.rank);
                    assert!(t.recovery.checkpoints > 0, "rank {}", t.rank);
                    assert_eq!(t.recovery.escalations, 0, "rank {}", t.rank);
                }
            }
        }
    }
}

/// The application-level drivers: mg-cfd and hydra under
/// `OP2_EXEC=dataflow` must match their level-synchronous runs to the
/// bit.
mod apps {
    use super::*;
    use op2::hydra::{ExtentMode, Hydra, HydraParams};
    use op2::mgcfd::{MgCfd, MgCfdParams};

    #[test]
    fn mgcfd_dataflow_driver_bitwise() {
        let params = MgCfdParams::small(8);
        let iters = 3;
        let layouts = {
            let app = MgCfd::new(params);
            let coords = &app.dom.dat(app.levels[0].ids.coords).data;
            let base = rcb_partition(coords, 3, 4);
            let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 4);
            build_layouts(&app.dom, &own, 2)
        };
        let mut base_app = MgCfd::new(params);
        let base = op2::mgcfd::run_ca(&mut base_app, &layouts, iters);
        for pin in [false, true] {
            let mut app = MgCfd::new(params);
            let out = op2::mgcfd::run_ca_dataflow(
                &mut app, &layouts, iters,
                Threading::with_threads(4), ExecMode::Dataflow, pin,
            );
            assert_eq!(
                out.rms.to_bits(),
                base.rms.to_bits(),
                "mg-cfd dataflow rms diverged (pin {pin})"
            );
        }
    }

    #[test]
    fn hydra_dataflow_driver_bitwise() {
        let params = HydraParams::small(6);
        let iters = 2;
        let layouts = {
            let app = Hydra::new(params);
            let base = rcb_partition(app.mesh.node_coords(), 3, 3);
            let own = derive_ownership(&app.mesh.dom, app.mesh.nodes, base, 3);
            // Safe-mode extents ladder to 5 on the periodic chains.
            build_layouts(&app.mesh.dom, &own, 6)
        };
        let mut base_app = Hydra::new(params);
        let base = op2::hydra::run_ca(&mut base_app, &layouts, iters, ExtentMode::Safe);
        let mut app = Hydra::new(params);
        let out = op2::hydra::run_ca_dataflow(
            &mut app, &layouts, iters, ExtentMode::Safe,
            Threading::with_threads(4), ExecMode::Dataflow, true,
        );
        assert_eq!(
            out.norm.to_bits(),
            base.norm.to_bits(),
            "hydra dataflow norm diverged"
        );
    }
}
