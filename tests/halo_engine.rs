//! Halo-exchange engine equivalence and allocation properties.
//!
//! PR 5 rebuilt the exchange machinery around persistent pooled message
//! buffers, arrival-order completion and core-tile overlap. None of
//! that may change a single bit of the results:
//!
//! * the planned path (cached plan + pooled buffers + `recv_any`
//!   arrival-order unpack) must be bitwise identical to the seed
//!   unplanned path and to plain sequential execution;
//! * a chaotic network (drops, duplicates, corruption, delays) must
//!   recover to the exact same bits — duplicated or corrupted payloads
//!   are discarded before they can reach (or poison) the buffer pool;
//! * once warm, a steady-state planned exchange performs **zero**
//!   payload heap allocations — `CommCounters::payload_allocs` stays
//!   flat across rounds;
//! * the core-tile-overlap tiled executor stays bitwise identical to
//!   the sequential reference at 1/2/4 pool threads, and the number of
//!   overlapped tiles is a pure function of the plan (identical across
//!   thread counts).
//!
//! The kernels keep all values dyadic rationals of small magnitude, so
//! floating-point addition is exact and the sequential reference is
//! bit-comparable across the distributed runs' local renumbering.

use op2::core::{seq, AccessMode, Arg, Args, ChainSpec, DatId, Domain, LoopSpec, SetId};
use op2::mesh::{Quad2D, Tet3D};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::exec::{run_chain, run_chain_tiled, run_chain_unplanned, run_loop};
use op2::runtime::{
    run_distributed_with, FaultPlan, FaultSpec, RankEnv, RankTrace, RunOptions, RuntimeError,
    Threading,
};
use proptest::prelude::*;

fn bump(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) + 1.0);
}
fn produce(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) + 1.0);
    args.inc(3, 0, args.get(1, 0) + 1.0);
}
fn consume(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) - args.get(1, 0));
    args.inc(3, 0, args.get(1, 0) * 0.5);
}

struct Case {
    dom: Domain,
    nodes: SetId,
    coords: DatId,
    cdim: usize,
    dats: [DatId; 2],
    bump_loop: LoopSpec,
    chain: ChainSpec,
}

fn build_case(nx: usize, ny: usize, nz: usize, tet: bool) -> Case {
    let (mut dom, nodes, edges, e2n, coords, cdim) = if tet {
        let m = Tet3D::generate(nx.min(6), ny.min(6), nz);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 3)
    } else {
        let m = Quad2D::generate(nx, ny);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 2)
    };
    let n = dom.set(nodes).size;
    let s0: Vec<f64> = (0..n).map(|i| ((i * 13 + 3) % 17) as f64).collect();
    let d0 = dom.decl_dat("d0", nodes, 1, s0);
    let d1 = dom.decl_dat_zeros("d1", nodes, 1);
    let bump_loop = LoopSpec::new(
        "bump",
        nodes,
        vec![Arg::dat_direct(d0, AccessMode::Rw)],
        bump,
    );
    let chain = ChainSpec::new(
        "he",
        vec![
            LoopSpec::new(
                "produce",
                edges,
                vec![
                    Arg::dat_indirect(d0, e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d0, e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d1, e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d1, e2n, 1, AccessMode::Inc),
                ],
                produce,
            ),
            LoopSpec::new(
                "consume",
                edges,
                vec![
                    Arg::dat_indirect(d1, e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d1, e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d0, e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d0, e2n, 1, AccessMode::Inc),
                ],
                consume,
            ),
        ],
        None,
        &[],
    )
    .unwrap();
    Case {
        dom,
        nodes,
        coords,
        cdim,
        dats: [d0, d1],
        bump_loop,
        chain,
    }
}

fn layouts_for(case: &Case, nparts: usize) -> Vec<RankLayout> {
    let base = rcb_partition(&case.dom.dat(case.coords).data, case.cdim, nparts);
    let own = derive_ownership(&case.dom, case.nodes, base, nparts);
    build_layouts(&case.dom, &own, 2)
}

const ITERS: usize = 4;

/// The sequential reference: dat bit patterns after `ITERS` rounds.
fn run_seq(case: &Case) -> Vec<Vec<u64>> {
    let mut dom = case.dom.clone();
    for _ in 0..ITERS {
        seq::run_loop(&mut dom, &case.bump_loop);
        for l in &case.chain.loops {
            seq::run_loop(&mut dom, l);
        }
    }
    bits_of(case, &dom)
}

fn bits_of(case: &Case, dom: &Domain) -> Vec<Vec<u64>> {
    case.dats
        .iter()
        .map(|&d| dom.dat(d).data.iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// `ITERS` distributed rounds of bump + `body`, returning per-rank
/// traces and the dat bit patterns.
fn run_dist(
    case: &Case,
    layouts: &[RankLayout],
    opts: &RunOptions,
    body: impl Fn(&mut RankEnv<'_>, &ChainSpec) -> Result<(), RuntimeError> + Sync,
) -> (Vec<RankTrace>, Vec<Vec<u64>>) {
    let mut dom = case.dom.clone();
    let out = run_distributed_with(&mut dom, layouts, opts, |env| {
        for _ in 0..ITERS {
            run_loop(env, &case.bump_loop)?;
            body(env, &case.chain)?;
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    let bits = bits_of(case, &dom);
    (out.traces, bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The planned engine (persistent buffers + arrival-order unpack)
    /// == the seed unplanned path == plain sequential, to the bit, on
    /// random quad/tet meshes at 2–4 ranks.
    #[test]
    fn planned_engine_bitwise_matches_seed_path(
        nx in 4usize..8,
        ny in 4usize..8,
        nz in 2usize..4,
        nparts in 2usize..5,
        tet in proptest::bool::ANY,
    ) {
        let case = build_case(nx, ny, nz, tet);
        let seq_bits = run_seq(&case);
        let layouts = layouts_for(&case, nparts);
        let opts = RunOptions::default();

        let (_, planned) = run_dist(&case, &layouts, &opts, run_chain);
        prop_assert_eq!(&planned, &seq_bits, "planned engine != sequential");

        let (_, unplanned) =
            run_dist(&case, &layouts, &opts, run_chain_unplanned);
        prop_assert_eq!(&unplanned, &seq_bits, "seed unplanned path != sequential");
    }

    /// A chaotic network (drops, dups, corruption, delays) must not
    /// poison the pooled buffers: duplicated and corrupted payloads are
    /// rejected before unpack, and every recycled buffer is cleared, so
    /// the planned engine still lands on the exact sequential bits.
    #[test]
    fn chaos_does_not_poison_pooled_buffers(
        nx in 4usize..7,
        ny in 4usize..7,
        nparts in 2usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let case = build_case(nx, ny, 2, false);
        let seq_bits = run_seq(&case);
        let layouts = layouts_for(&case, nparts);
        let opts = RunOptions::with_faults(FaultPlan::new(FaultSpec::chaos(seed)));

        let (_, planned) = run_dist(&case, &layouts, &opts, run_chain);
        prop_assert_eq!(&planned, &seq_bits, "chaos diverged the planned engine");
    }

    /// Core-tile overlap at 1/2/4 pool threads: bitwise identical to
    /// sequential, and `overlap_tiles` — how many tiles ran while the
    /// grouped exchange was in flight — is a pure function of the plan,
    /// so it must agree across thread counts.
    #[test]
    fn overlap_tiled_bitwise_across_thread_counts(
        nx in 4usize..8,
        ny in 4usize..8,
        nparts in 2usize..4,
        n_tiles in 2usize..7,
        tet in proptest::bool::ANY,
    ) {
        let case = build_case(nx, ny, 2, tet);
        let seq_bits = run_seq(&case);
        let layouts = layouts_for(&case, nparts);

        let mut overlap_ref: Option<Vec<u64>> = None;
        for n_threads in [1usize, 2, 4] {
            let threading = Threading { n_threads, block_size: 4, auto_block: false };
            let opts = RunOptions::default().threading(threading);
            let (traces, bits) =
                run_dist(&case, &layouts, &opts, |env, chain| run_chain_tiled(env, chain, n_tiles));
            prop_assert_eq!(&bits, &seq_bits, "{} threads: data != seq", n_threads);
            let overlap: Vec<u64> = traces.iter().map(|t| t.plan.overlap_tiles).collect();
            match &overlap_ref {
                None => overlap_ref = Some(overlap),
                Some(r) => prop_assert_eq!(
                    &overlap, r,
                    "overlap_tiles must not depend on thread count"
                ),
            }
        }
    }
}

/// Acceptance: zero payload heap allocations in a steady-state planned
/// exchange. After two warm-up rounds every send buffer comes from the
/// pool and every receive is recycled back, so `payload_allocs` stays
/// exactly flat over the following rounds (healthy network — fault
/// injection clones payloads and is exempt by design).
#[test]
fn steady_state_planned_exchange_allocates_nothing() {
    let case = build_case(10, 10, 2, false);
    let layouts = layouts_for(&case, 4);
    let mut dom = case.dom.clone();
    let out = run_distributed_with(&mut dom, &layouts, &RunOptions::default(), |env| {
        for _ in 0..2 {
            run_loop(env, &case.bump_loop)?;
            run_chain(env, &case.chain)?;
        }
        let warm = env.comm.counters.payload_allocs;
        for _ in 0..5 {
            run_loop(env, &case.bump_loop)?;
            run_chain(env, &case.chain)?;
        }
        Ok((warm, env.comm.counters.payload_allocs))
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    let mut exercised = false;
    for (rank, (warm, steady)) in out.unwrap_results().into_iter().enumerate() {
        assert_eq!(
            warm, steady,
            "rank {rank}: steady-state planned exchange allocated payload buffers \
             ({warm} after warm-up, {steady} after 5 more rounds)"
        );
        exercised |= warm > 0;
    }
    assert!(exercised, "pool never exercised — the test is vacuous");
}

/// The overlap executor actually engages on a mesh with real interior:
/// some tiles' footprints sit entirely inside every loop's core region
/// and are executed while the grouped exchange is in flight.
#[test]
fn core_tile_overlap_engages_on_large_mesh() {
    let case = build_case(16, 16, 2, false);
    let seq_bits = run_seq(&case);
    let layouts = layouts_for(&case, 2);
    let (traces, bits) = run_dist(
        &case,
        &layouts,
        &RunOptions::default(),
        |env, chain| run_chain_tiled(env, chain, 8),
    );
    assert_eq!(bits, seq_bits);
    let total: u64 = traces.iter().map(|t| t.plan.overlap_tiles).sum();
    assert!(
        total > 0,
        "no tile ever overlapped the exchange on a 16x16 mesh with 8 tiles"
    );
}
