//! Threaded-executor equivalence properties.
//!
//! The colored-threaded executor's contract is *bitwise identity*: the
//! levelized block coloring preserves ascending per-element update
//! order, so thread count and block size are invisible in the results —
//! not "equal up to reassociation tolerance", equal to the bit. These
//! properties pin that contract on randomly generated 2-D quad and 3-D
//! tet meshes, for chains with `OP_INC` through maps, against both the
//! sequential reference and the unplanned distributed path, at 1, 2 and
//! 4 threads.
//!
//! The kernels keep all values dyadic rationals of small magnitude, so
//! floating-point addition is exact and the sequential reference is
//! bit-comparable even across the distributed runs' local renumbering.

use op2::core::{seq, AccessMode, Arg, Args, ChainSpec, DatId, Domain, LoopSpec, SetId};
use op2::mesh::{Quad2D, Tet3D};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::exec::{run_chain, run_chain_unplanned, run_loop};
use op2::runtime::{run_distributed_with, RankTrace, RunOptions, Threading};
use proptest::prelude::*;

fn bump(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) + 1.0);
}
fn produce(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) + 1.0);
    args.inc(3, 0, args.get(1, 0) + 1.0);
}
fn consume(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) - args.get(1, 0));
    args.inc(3, 0, args.get(1, 0) * 0.5);
}

struct Case {
    dom: Domain,
    nodes: SetId,
    coords: DatId,
    cdim: usize,
    dats: [DatId; 2],
    bump_loop: LoopSpec,
    chain: ChainSpec,
}

fn build_case(nx: usize, ny: usize, nz: usize, tet: bool) -> Case {
    let (mut dom, nodes, edges, e2n, coords, cdim) = if tet {
        let m = Tet3D::generate(nx.min(6), ny.min(6), nz);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 3)
    } else {
        let m = Quad2D::generate(nx, ny);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 2)
    };
    let n = dom.set(nodes).size;
    let s0: Vec<f64> = (0..n).map(|i| ((i * 11 + 5) % 19) as f64).collect();
    let d0 = dom.decl_dat("d0", nodes, 1, s0);
    let d1 = dom.decl_dat_zeros("d1", nodes, 1);
    let bump_loop = LoopSpec::new(
        "bump",
        nodes,
        vec![Arg::dat_direct(d0, AccessMode::Rw)],
        bump,
    );
    let chain = ChainSpec::new(
        "th",
        vec![
            LoopSpec::new(
                "produce",
                edges,
                vec![
                    Arg::dat_indirect(d0, e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d0, e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d1, e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d1, e2n, 1, AccessMode::Inc),
                ],
                produce,
            ),
            LoopSpec::new(
                "consume",
                edges,
                vec![
                    Arg::dat_indirect(d1, e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d1, e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d0, e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d0, e2n, 1, AccessMode::Inc),
                ],
                consume,
            ),
        ],
        None,
        &[],
    )
    .unwrap();
    Case {
        dom,
        nodes,
        coords,
        cdim,
        dats: [d0, d1],
        bump_loop,
        chain,
    }
}

fn layouts_for(case: &Case, nparts: usize) -> Vec<RankLayout> {
    let base = rcb_partition(&case.dom.dat(case.coords).data, case.cdim, nparts);
    let own = derive_ownership(&case.dom, case.nodes, base, nparts);
    build_layouts(&case.dom, &own, 2)
}

/// Two distributed iterations of bump + chain under `threading`, through
/// the planned or unplanned chain executor. Returns bit patterns of the
/// dats plus the per-rank traces.
fn run_dist(
    case: &Case,
    dom: &mut Domain,
    layouts: &[RankLayout],
    threading: Threading,
    planned: bool,
) -> (Vec<RankTrace>, Vec<Vec<u64>>) {
    let opts = RunOptions::default().threading(threading);
    let out = run_distributed_with(dom, layouts, &opts, |env| {
        for _ in 0..2 {
            run_loop(env, &case.bump_loop)?;
            if planned {
                run_chain(env, &case.chain)?;
            } else {
                run_chain_unplanned(env, &case.chain)?;
            }
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    let data = case
        .dats
        .iter()
        .map(|&d| dom.dat(d).data.iter().map(|x| x.to_bits()).collect())
        .collect();
    (out.traces, data)
}

/// The sequential reference of the same program: dat bit patterns.
fn run_seq(case: &Case) -> Vec<Vec<u64>> {
    let mut dom = case.dom.clone();
    for _ in 0..2 {
        seq::run_loop(&mut dom, &case.bump_loop);
        for l in &case.chain.loops {
            seq::run_loop(&mut dom, l);
        }
    }
    case.dats
        .iter()
        .map(|&d| dom.dat(d).data.iter().map(|x| x.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Planned chains under 1/2/4 pool threads are bitwise identical to
    /// the sequential reference AND trace-equivalent (same loop records,
    /// same chain records, same exchange totals) to the single-threaded
    /// planned run. Thread count only ever adds `threads` records.
    #[test]
    fn threaded_planned_chain_bitwise_and_trace_equal(
        nx in 4usize..8,
        ny in 4usize..8,
        nz in 2usize..4,
        nparts in 2usize..5,
        tet in proptest::bool::ANY,
    ) {
        let case = build_case(nx, ny, nz, tet);
        let seq_bits = run_seq(&case);

        let mut dom_ref = case.dom.clone();
        let layouts = layouts_for(&case, nparts);
        let (traces_ref, bits_ref) =
            run_dist(&case, &mut dom_ref, &layouts, Threading::single(), true);
        prop_assert_eq!(&bits_ref, &seq_bits, "single-threaded planned != seq");
        for t in &traces_ref {
            prop_assert!(t.threads.is_empty(), "rank {}: unexpected ThreadRec", t.rank);
        }

        for n_threads in [1usize, 2, 4] {
            let threading = Threading { n_threads, block_size: 4 };
            let mut dom = case.dom.clone();
            let (traces, bits) = run_dist(&case, &mut dom, &layouts, threading, true);
            prop_assert_eq!(&bits, &seq_bits, "{} threads: data != seq", n_threads);
            for (t, tr) in traces.iter().zip(&traces_ref) {
                prop_assert_eq!(&t.loops, &tr.loops, "rank {} loop records", t.rank);
                prop_assert_eq!(&t.chains, &tr.chains, "rank {} chain records", t.rank);
                prop_assert_eq!(t.total_msgs(), tr.total_msgs());
                prop_assert_eq!(t.total_bytes(), tr.total_bytes());
                if n_threads == 1 {
                    prop_assert!(t.threads.is_empty());
                } else {
                    // Repeat invocations re-color nothing: at most one
                    // coloring build per (plan, loop, phase range) plus
                    // one per standalone loop signature — every further
                    // colored execution is a cache hit.
                    let bound = t.plan.misses * 2 * case.chain.len() as u64 + 2;
                    prop_assert!(
                        t.plan.color_misses <= bound,
                        "rank {}: {:?} exceeds {}", t.rank, t.plan, bound
                    );
                }
            }
        }
    }

    /// The unplanned distributed path (standalone per-rank coloring
    /// cache, no chain plan) obeys the same contract: 2- and 4-thread
    /// runs are bitwise identical to its single-threaded run and to the
    /// sequential reference.
    #[test]
    fn threaded_unplanned_chain_bitwise_equal(
        nx in 4usize..8,
        ny in 4usize..8,
        nz in 2usize..4,
        nparts in 2usize..4,
        tet in proptest::bool::ANY,
    ) {
        let case = build_case(nx, ny, nz, tet);
        let seq_bits = run_seq(&case);

        let layouts = layouts_for(&case, nparts);
        let mut dom_ref = case.dom.clone();
        let (_, bits_ref) =
            run_dist(&case, &mut dom_ref, &layouts, Threading::single(), false);
        prop_assert_eq!(&bits_ref, &seq_bits, "single-threaded unplanned != seq");

        for n_threads in [2usize, 4] {
            let threading = Threading { n_threads, block_size: 4 };
            let mut dom = case.dom.clone();
            let (_, bits) = run_dist(&case, &mut dom, &layouts, threading, false);
            prop_assert_eq!(&bits, &seq_bits, "{} threads: data != seq", n_threads);
        }
    }
}

// Deterministic (non-property) check that the threaded path actually
// engages on a mesh big enough to exceed the block size, so the
// properties above aren't vacuously comparing sequential fallbacks.
#[test]
fn threaded_path_engages_on_large_mesh() {
    let case = build_case(12, 12, 2, false);
    let layouts = layouts_for(&case, 2);
    let mut dom = case.dom.clone();
    let threading = Threading {
        n_threads: 4,
        block_size: 8,
    };
    let (traces, bits) = run_dist(&case, &mut dom, &layouts, threading, true);
    assert_eq!(bits, run_seq(&case));
    assert!(
        traces.iter().any(|t| !t.threads.is_empty()),
        "no rank recorded a threaded execution"
    );
    for t in &traces {
        for rec in &t.threads {
            assert_eq!(rec.n_threads, 4);
            assert_eq!(rec.color_ns.len(), rec.n_colors);
            assert!(rec.n_blocks > 0 && rec.n_colors > 0);
        }
    }
}
