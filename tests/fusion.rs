//! Cross-loop fusion equivalence properties.
//!
//! The fused executor runs every kernel of a fusion group back-to-back
//! per element, keeping elided intermediates in per-worker scratch
//! instead of round-tripping them through the dat arrays. The contract
//! (DESIGN.md §16) is that this is *bitwise identical* to the unfused
//! chain on every lowering — direct, colored and tiled — at any thread
//! count, because every lowering preserves the per-location update
//! order of the unfused walk.
//!
//! Pinned here, on randomly generated 2-D quad and 3-D tet meshes:
//!
//! 1. **Fused == unfused == sequential** to the bit at 1/2/4 pool
//!    threads across the direct, colored and tiled lowerings, with the
//!    traces proving fused pieces actually ran and intermediate bytes
//!    were actually elided (proptest).
//! 2. **Steady state allocates nothing**: after one warm-up invocation
//!    per lowering the per-thread scratch pool never grows again.
//! 3. **`OP2_FUSE=auto` fuses only when profitable**: a chain with
//!    elision and no exchange traffic fuses; a fusable chain with
//!    nothing to elide stays unfused under `auto` but fuses under `on`.
//! 4. **Chaos**: a rank crash at a chain boundary of a fused program
//!    (and mid-program at a loop boundary) rolls back and replays to
//!    results bitwise equal to the fault-free reference — elided dats
//!    are never dirty-marked, so checkpointed bytes stay exact.
//!
//! All kernels keep values dyadic rationals so floating-point addition
//! is exact and the sequential reference is bit-comparable.

use op2::core::{seq, AccessMode, Arg, Args, ChainSpec, DatId, Domain, LoopSpec, SetId};
use op2::mesh::{Quad2D, Tet3D};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::exec::{run_chain, run_chain_tiled, run_loop};
use op2::runtime::{run_distributed_with, FuseMode, RankTrace, RunOptions, Threading};
use proptest::prelude::*;

fn bump(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) + 1.0);
}
fn produce(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) + 1.0);
    args.inc(3, 0, args.get(1, 0) * 0.5);
}
/// `tmp = d0 * 0.5 + 1.0` — the producer of the elidable intermediate.
fn stage(args: &Args<'_>) {
    args.set(1, 0, args.get(0, 0) * 0.5 + 1.0);
}
/// `d0 += tmp * 0.25; d1 = d1 * 0.5 + tmp` — its only consumer.
fn apply(args: &Args<'_>) {
    args.set(1, 0, args.get(1, 0) + args.get(0, 0) * 0.25);
    args.set(2, 0, args.get(2, 0) * 0.5 + args.get(0, 0));
}

struct Case {
    dom: Domain,
    nodes: SetId,
    coords: DatId,
    cdim: usize,
    /// The dats compared against the reference. `tmp` is excluded: the
    /// fused run elides it, leaving its memory untouched/unspecified.
    dats: [DatId; 2],
    bump_loop: LoopSpec,
    chain: ChainSpec,
}

/// Mirror of the mg-cfd fused chain shape: an indirect edges loop
/// (set-change boundary, stays solo), then a direct Write of `tmp`,
/// then a direct loop Reading `tmp` — the last two fuse, `tmp` elides.
fn build_case(nx: usize, ny: usize, nz: usize, tet: bool) -> Case {
    build_case_with(nx, ny, nz, tet, true)
}

fn build_case_with(nx: usize, ny: usize, nz: usize, tet: bool, scratch: bool) -> Case {
    let (mut dom, nodes, edges, e2n, coords, cdim) = if tet {
        let m = Tet3D::generate(nx.min(6), ny.min(6), nz);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 3)
    } else {
        let m = Quad2D::generate(nx, ny);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 2)
    };
    let n = dom.set(nodes).size;
    let s0: Vec<f64> = (0..n).map(|i| ((i * 13 + 7) % 17) as f64).collect();
    let d0 = dom.decl_dat("d0", nodes, 1, s0);
    let d1 = dom.decl_dat_zeros("d1", nodes, 1);
    let tmp = dom.decl_dat_zeros("tmp", nodes, 1);
    let bump_loop = LoopSpec::new(
        "bump",
        nodes,
        vec![Arg::dat_direct(d0, AccessMode::Rw)],
        bump,
    );
    let chain = ChainSpec::new(
        "fuse",
        vec![
            LoopSpec::new(
                "produce",
                edges,
                vec![
                    Arg::dat_indirect(d0, e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d0, e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d1, e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d1, e2n, 1, AccessMode::Inc),
                ],
                produce,
            ),
            LoopSpec::new(
                "stage",
                nodes,
                vec![
                    Arg::dat_direct(d0, AccessMode::Read),
                    Arg::dat_direct(tmp, AccessMode::Write),
                ],
                stage,
            ),
            LoopSpec::new(
                "apply",
                nodes,
                vec![
                    Arg::dat_direct(tmp, AccessMode::Read),
                    Arg::dat_direct(d0, AccessMode::Rw),
                    Arg::dat_direct(d1, AccessMode::Rw),
                ],
                apply,
            ),
        ],
        None,
        &[],
    )
    .unwrap();
    let chain = if scratch {
        chain.with_scratch(&[tmp])
    } else {
        chain
    };
    Case {
        dom,
        nodes,
        coords,
        cdim,
        dats: [d0, d1],
        bump_loop,
        chain,
    }
}

fn layouts_for(case: &Case, nparts: usize) -> Vec<RankLayout> {
    let base = rcb_partition(&case.dom.dat(case.coords).data, case.cdim, nparts);
    let own = derive_ownership(&case.dom, case.nodes, base, nparts);
    build_layouts(&case.dom, &own, 2)
}

fn bits_of(case: &Case, dom: &Domain) -> Vec<Vec<u64>> {
    case.dats
        .iter()
        .map(|&d| dom.dat(d).data.iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// `iters` iterations of bump + chain under `fuse`/`threading`, via
/// the strict chain entry (direct or colored lowering).
fn run_case(
    case: &Case,
    layouts: &[RankLayout],
    fuse: FuseMode,
    threading: Threading,
    iters: usize,
) -> (Vec<RankTrace>, Vec<Vec<u64>>) {
    let mut dom = case.dom.clone();
    let opts = RunOptions::default().fuse(fuse).threading(threading);
    let out = run_distributed_with(&mut dom, layouts, &opts, |env| {
        for _ in 0..iters {
            run_loop(env, &case.bump_loop)?;
            run_chain(env, &case.chain)?;
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    let bits = bits_of(case, &dom);
    (out.traces, bits)
}

/// Same program through the sparse-tiled chain executor.
fn run_case_tiled(
    case: &Case,
    layouts: &[RankLayout],
    fuse: FuseMode,
    threading: Threading,
    n_tiles: usize,
    iters: usize,
) -> (Vec<RankTrace>, Vec<Vec<u64>>) {
    let mut dom = case.dom.clone();
    let opts = RunOptions::default().fuse(fuse).threading(threading);
    let out = run_distributed_with(&mut dom, layouts, &opts, |env| {
        for _ in 0..iters {
            run_loop(env, &case.bump_loop)?;
            run_chain_tiled(env, &case.chain, n_tiles)?;
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    let bits = bits_of(case, &dom);
    (out.traces, bits)
}

/// Plain sequential reference (materializes `tmp`; the comparison never
/// looks at it).
fn run_seq(case: &Case, iters: usize) -> Vec<Vec<u64>> {
    let mut dom = case.dom.clone();
    for _ in 0..iters {
        seq::run_loop(&mut dom, &case.bump_loop);
        for l in &case.chain.loops {
            seq::run_loop(&mut dom, l);
        }
    }
    bits_of(case, &dom)
}

fn assert_fused(traces: &[RankTrace], elided: bool, label: &str) {
    for t in traces {
        assert!(
            t.plan.fused_pieces > 0,
            "{label}: rank {} ran no fused pieces",
            t.rank
        );
        if elided {
            assert!(
                t.plan.elided_bytes > 0,
                "{label}: rank {} elided no intermediate bytes",
                t.rank
            );
        } else {
            assert_eq!(
                t.plan.elided_bytes, 0,
                "{label}: rank {} elided bytes without scratch",
                t.rank
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fused == unfused == plain sequential, to the bit, on every
    /// lowering: direct (single), colored (1/2/4 pool threads) and
    /// tiled — with the fused runs' traces proving fusion engaged and
    /// elided intermediate traffic.
    #[test]
    fn fused_matches_unfused_bitwise(
        nx in 4usize..8,
        ny in 4usize..8,
        nz in 2usize..4,
        nparts in 2usize..4,
        n_tiles in 2usize..6,
        tet in proptest::bool::ANY,
    ) {
        let iters = 3;
        let case = build_case(nx, ny, nz, tet);
        let seq_bits = run_seq(&case, iters);
        let layouts = layouts_for(&case, nparts);

        // Unfused baseline equals the sequential reference.
        let (_, bits_off) =
            run_case(&case, &layouts, FuseMode::Off, Threading::single(), iters);
        prop_assert_eq!(&bits_off, &seq_bits, "unfused != seq");

        // Direct lowering, fused.
        let (traces, bits) =
            run_case(&case, &layouts, FuseMode::On, Threading::single(), iters);
        prop_assert_eq!(&bits, &seq_bits, "fused direct != seq");
        assert_fused(&traces, true, "direct");

        // Colored lowering, fused, 1/2/4 threads.
        for n_threads in [1usize, 2, 4] {
            let threading = Threading { n_threads, block_size: 4, auto_block: false };
            let (traces, bits) =
                run_case(&case, &layouts, FuseMode::On, threading, iters);
            prop_assert_eq!(&bits, &seq_bits, "fused colored @{} != seq", n_threads);
            assert_fused(&traces, true, &format!("colored @{n_threads}"));
        }

        // Tiled lowering: fused must match the unfused tiled run and the
        // sequential reference at 1/2/4 threads. (Whether a given tile
        // shape yields fusable windows is mesh-dependent; engagement is
        // pinned deterministically below.)
        let (_, bits_toff) = run_case_tiled(
            &case, &layouts, FuseMode::Off, Threading::single(), n_tiles, iters);
        prop_assert_eq!(&bits_toff, &seq_bits, "unfused tiled != seq");
        for n_threads in [1usize, 2, 4] {
            let threading = Threading { n_threads, block_size: 4, auto_block: false };
            let (_, bits) = run_case_tiled(
                &case, &layouts, FuseMode::On, threading, n_tiles, iters);
            prop_assert_eq!(&bits, &seq_bits, "fused tiled @{} != seq", n_threads);
        }
    }
}

/// Deterministic engagement check: on a mesh big enough for real
/// parallelism every lowering runs fused pieces with elided bytes, so
/// the property above isn't vacuously exercising the unfused fallback.
#[test]
fn fusion_engages_on_every_lowering() {
    let iters = 3;
    let case = build_case(16, 16, 2, false);
    let seq_bits = run_seq(&case, iters);
    let layouts = layouts_for(&case, 2);

    let (traces, bits) =
        run_case(&case, &layouts, FuseMode::On, Threading::single(), iters);
    assert_eq!(bits, seq_bits);
    assert_fused(&traces, true, "direct");

    let (traces, bits) =
        run_case(&case, &layouts, FuseMode::On, Threading::with_threads(4), iters);
    assert_eq!(bits, seq_bits);
    assert_fused(&traces, true, "colored");

    let (traces, bits) = run_case_tiled(
        &case, &layouts, FuseMode::On, Threading::with_threads(4), 6, iters);
    assert_eq!(bits, seq_bits);
    assert_fused(&traces, true, "tiled");
}

/// Satellite acceptance: the per-thread scratch pool reaches a fixed
/// point after warm-up — repeat fused invocations allocate nothing.
#[test]
fn fused_steady_state_allocates_nothing() {
    let case = build_case(12, 12, 2, false);
    let layouts = layouts_for(&case, 2);
    let mut dom = case.dom.clone();
    let opts = RunOptions::default()
        .fuse(FuseMode::On)
        .threading(Threading::with_threads(4));
    let out = run_distributed_with(&mut dom, &layouts, &opts, |env| {
        // Two warm-up iterations: the first materializes the fused
        // schedule, the second settles the dirty class.
        for _ in 0..2 {
            run_loop(env, &case.bump_loop)?;
            run_chain(env, &case.chain)?;
        }
        let warm = env.sched_allocs();
        for _ in 0..4 {
            run_loop(env, &case.bump_loop)?;
            run_chain(env, &case.chain)?;
        }
        assert_eq!(
            env.sched_allocs(),
            warm,
            "rank {}: scratch pool allocated at steady state",
            env.rank
        );
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    assert_fused(&out.traces, true, "steady state");
}

/// `OP2_FUSE=auto` takes the fused plan exactly when the modeled
/// memory-traffic saving beats the forfeited exchange/compute overlap:
/// a chain with elided bytes and no exchange fuses; a fusable chain
/// with nothing to elide stays unfused under `auto` yet fuses under
/// `on`.
#[test]
fn auto_fuses_only_when_profitable() {
    let iters = 3;

    // Elision + clean halos (no bump ⇒ no dirty dats ⇒ zero exchange
    // payload after the first plan) ⇒ auto fuses.
    let case = build_case(10, 8, 2, false);
    let seq_bits = {
        let mut dom = case.dom.clone();
        for _ in 0..iters {
            for l in &case.chain.loops {
                seq::run_loop(&mut dom, l);
            }
        }
        bits_of(&case, &dom)
    };
    let layouts = layouts_for(&case, 2);
    let mut dom = case.dom.clone();
    let opts = RunOptions::default().fuse(FuseMode::Auto);
    let out = run_distributed_with(&mut dom, &layouts, &opts, |env| {
        for _ in 0..iters {
            run_chain(env, &case.chain)?;
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    assert_eq!(bits_of(&case, &dom), seq_bits, "auto-fused != seq");
    assert_fused(&out.traces, true, "auto with elision");

    // Fusable but nothing elided (tmp not declared scratch): `on`
    // fuses with zero elided bytes, `auto` declines.
    let case = build_case_with(10, 8, 2, false, false);
    let seq_bits = run_seq(&case, iters);
    let layouts = layouts_for(&case, 2);

    let (traces, bits) =
        run_case(&case, &layouts, FuseMode::On, Threading::single(), iters);
    assert_eq!(bits, seq_bits, "forced fusion != seq");
    assert_fused(&traces, false, "on without scratch");

    let (traces, bits) =
        run_case(&case, &layouts, FuseMode::Auto, Threading::single(), iters);
    assert_eq!(bits, seq_bits, "auto-unfused != seq");
    for t in &traces {
        assert_eq!(
            t.plan.fused_pieces, 0,
            "rank {}: auto fused a chain with nothing to elide",
            t.rank
        );
    }
}

/// The application-level fused drivers: the mg-cfd step_factor →
/// time_step pair fuses with `adt` elided; the hydra state → jacobian
/// pair fuses without elision. Both must be bitwise identical to their
/// unfused runs.
mod apps {
    use super::*;
    use op2::hydra::{Hydra, HydraParams};
    use op2::mgcfd::{MgCfd, MgCfdParams};
    use op2::partition::{kway_partition, rib_partition};
    use op2_mesh::Csr;

    #[test]
    fn mgcfd_fused_driver_elides_adt_bitwise() {
        let params = MgCfdParams::small(8);
        let iters = 3;
        let layouts = {
            let app = MgCfd::new(params);
            let l0 = &app.levels[0];
            let graph =
                Csr::node_graph(app.dom.map(l0.ids.e2n), app.dom.set(l0.ids.nodes).size);
            let base = kway_partition(&graph, 4, 3);
            let own = derive_ownership(&app.dom, l0.ids.nodes, base, 4);
            build_layouts(&app.dom, &own, 2)
        };

        let mut off_app = MgCfd::new(params);
        let off = op2::mgcfd::run_ca_fused(&mut off_app, &layouts, iters, FuseMode::Off, None);

        for threading in [None, Some(Threading::with_threads(4))] {
            let mut on_app = MgCfd::new(params);
            let on = op2::mgcfd::run_ca_fused(
                &mut on_app, &layouts, iters, FuseMode::On, threading,
            );
            assert_eq!(
                on.rms.to_bits(),
                off.rms.to_bits(),
                "fused mg-cfd rms diverged ({:?})",
                threading
            );
            assert_fused(&on.traces, true, "mg-cfd");
        }
    }

    #[test]
    fn hydra_fused_driver_fuses_without_elision_bitwise() {
        let params = HydraParams::small(6);
        let iters = 3;
        let layouts = {
            let app = Hydra::new(params);
            let base = rib_partition(app.mesh.node_coords(), 3, 3);
            let own = derive_ownership(&app.mesh.dom, app.mesh.nodes, base, 3);
            build_layouts(&app.mesh.dom, &own, 2)
        };

        let mut off_app = Hydra::new(params);
        let off = op2::hydra::run_ca_fused(&mut off_app, &layouts, iters, FuseMode::Off, None);

        let mut on_app = Hydra::new(params);
        let on = op2::hydra::run_ca_fused(&mut on_app, &layouts, iters, FuseMode::On, None);
        assert_eq!(
            on.norm.to_bits(),
            off.norm.to_bits(),
            "fused hydra norm diverged"
        );
        assert_fused(&on.traces, false, "hydra");
    }
}

/// Chaos: crashes inside a fused program recover bitwise (gated like
/// `tests/recovery.rs` behind the default-on `chaos` feature).
#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use op2::runtime::{
        run_supervised, Boundary, BoundaryKind, FaultPlan, FaultSpec, SuperviseOptions,
    };

    /// Kill rank 1 at every chain boundary the fused program crosses
    /// (the fused executor checkpoints at chain granularity), and once
    /// mid-program at a loop boundary, at 1 and 4 threads. Every
    /// variant must roll back exactly once and replay to results
    /// bitwise equal to the fault-free reference — including the
    /// elided dat's checkpointed bytes, which fusion never touches.
    #[test]
    fn crash_in_fused_program_recovers_bitwise() {
        let iters = 3;
        let sites: Vec<(BoundaryKind, u64)> = (0..iters as u64)
            .map(|k| (BoundaryKind::Chain, k))
            .chain([(BoundaryKind::Loop, 1)])
            .collect();
        for n_threads in [1usize, 4] {
            for &(kind, k) in &sites {
                let case = build_case(10, 8, 2, false);
                let seq_bits = run_seq(&case, iters);
                let layouts = layouts_for(&case, 4);
                let spec = FaultSpec::default()
                    .with_crash_site(1, Boundary::new(kind, k));
                let run = RunOptions::with_faults(FaultPlan::new(spec))
                    .with_threads(n_threads)
                    .checkpoint_every(1)
                    .fuse(FuseMode::On);
                let mut dom = case.dom.clone();
                let out = run_supervised(
                    &mut dom,
                    &layouts,
                    &SuperviseOptions::new(run),
                    |env| {
                        for _ in 0..iters {
                            run_loop(env, &case.bump_loop)?;
                            run_chain(env, &case.chain)?;
                        }
                        Ok(())
                    },
                )
                .unwrap_or_else(|e| {
                    panic!("threads {n_threads}, {kind:?} {k}: supervision failed: {e}")
                });
                assert!(out.all_ok(), "failures: {:?}", out.failures());
                assert_eq!(
                    bits_of(&case, &dom),
                    seq_bits,
                    "threads {n_threads}, {kind:?} boundary {k}: diverged from reference"
                );
                assert_fused(&out.traces, true, &format!("{kind:?} {k}"));
                for t in &out.traces {
                    assert_eq!(t.recovery.attempts, 2, "rank {}", t.rank);
                    assert_eq!(t.recovery.rollbacks, 1, "rank {}", t.rank);
                    assert!(t.recovery.checkpoints > 0, "rank {}", t.rank);
                    assert_eq!(t.recovery.escalations, 0, "rank {}", t.rank);
                }
            }
        }
    }
}
