//! Rebalance suite: the online rebalancing subsystem (DESIGN.md §15).
//!
//! The contract under test: migration redistributes *work*, never
//! *values*. For any program whose arithmetic is exact in f64 (the
//! integer-valued produce/consume fixture every bitwise suite in this
//! repo builds on), a run that migrates elements mid-flight is
//! **bitwise identical** to the never-migrated run — at 1, 2 and 4
//! threads, and with a crash + rollback straddling the migration. For
//! the CFD apps, whose kernels round, the partition itself already
//! perturbs low bits: indirect `Inc` contributions at partition
//! boundaries accumulate core-first / halo-after, an order the owner
//! assignment decides, so two *static* runs on different partitions
//! differ by ~1 ULP at a handful of boundary entries (measured on the
//! MG-CFD small mesh: ≤ 2e-16 relative on ~10 of ~2400 entries, RMS
//! bit-identical). The migrated run is held to exactly that bar.
//! Pinned down:
//!
//! 1. **Static equivalence sweep**: a trace-triggered (threshold 0),
//!    cost-skewed migration at the first segment boundary leaves the
//!    exact-arithmetic program bitwise equal to the never-migrated
//!    sequential reference at 1, 2 and 4 pool threads.
//! 2. **Crash straddling a migration** (chaos): rank 1 dies in the
//!    first post-migration segment; rollback lands on a post-fence
//!    checkpoint (old-layout checkpoints were dropped by the epoch
//!    fence) and the run still finishes bitwise equal.
//! 3. **Service replanning**: `rebalance_mesh_with_costs` re-keys the
//!    world under a new mesh signature after exactly one registry
//!    invalidation — the old signature turns into typed `UnknownMesh`,
//!    the first post-migration job re-inspects and republishes, the job
//!    after it runs inspection-free, and both match the standalone
//!    reference computed on the *pre-migration* layouts bitwise.
//! 4. **App equivalence**: MG-CFD (at 1/2/4 threads) and Hydra (`Safe`
//!    extents) through `run_ca_rebalanced` reproduce the static run's
//!    RMS/norm bitwise and every dat entry to ≤ 1e-10 relative.
//! 5. **Planner invariants** (proptest): arbitrary sequences of
//!    drifting-cost re-shards over shuffled meshes keep every element
//!    owned exactly once, move lists exactly equal to the ownership
//!    diff (ascending ids), localized maps fully resolved, and halo
//!    send/recv segments mirrored across every neighbor pair.

use op2::core::{AccessMode, Arg, Args, ChainSpec, DatId, Domain, GblDecl, LoopSpec, SetId};
use op2::hydra::{self, ExtentMode, Hydra, HydraParams};
use op2::mesh::shuffle::shuffle_set;
use op2::mesh::{drifting_costs, skewed_costs, Quad2D};
use op2::mgcfd::{self, MgCfd, MgCfdParams};
use op2::partition::{
    build_layouts, derive_ownership, ownership_from_layouts, plan_migration, rcb_partition,
    rcb_partition_weighted, RankLayout,
};
use op2::runtime::exec::{run_chain, run_loop};
use op2::runtime::{
    detect, exec_job_program, fence_slots, rebalance, run_distributed_with,
    run_supervised_with_state, FaultPlan, Job, JobStep, RankState, RankTrace, RebalanceConfig,
    RebalancePolicy, RebalanceRec, RunOptions, Service, ServiceConfig, ServiceError,
    SuperviseOptions,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// The exact-arithmetic fixture (same shape as tests/service.rs):
// integer-valued data, +1 increments — every sum is exact in f64, so
// results are reassociation-immune and the bitwise contract is provable
// against the sequential reference on any partition schedule.
// ---------------------------------------------------------------------

fn produce_kernel(args: &Args<'_>) {
    args.inc(0, 0, args.get(2, 0) + 1.0);
    args.inc(1, 0, args.get(3, 0) + 2.0);
}

fn consume_kernel(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0));
    args.inc(3, 0, args.get(1, 0));
}

fn bump_kernel(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) + 1.0);
}

fn sum_kernel(args: &Args<'_>) {
    args.inc(1, 0, args.get(0, 0));
}

struct Fixture {
    base: Domain,
    layouts: Vec<RankLayout>,
    nodes: SetId,
    coords: DatId,
    seed: DatId,
    dats: Vec<DatId>,
    bump: LoopSpec,
    chain: ChainSpec,
    sum: LoopSpec,
}

impl Fixture {
    fn new(nparts: usize) -> Self {
        let mut mesh = Quad2D::generate(10, 8);
        let n = mesh.dom.set(mesh.nodes).size;
        let seed0: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64).collect();
        let seed = mesh.dom.decl_dat("seed", mesh.nodes, 1, seed0);
        let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
        let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
        let bump = LoopSpec::new(
            "bump",
            mesh.nodes,
            vec![Arg::dat_direct(seed, AccessMode::Rw)],
            bump_kernel,
        );
        let produce = LoopSpec::new(
            "produce",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(seed, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(seed, mesh.e2n, 1, AccessMode::Read),
            ],
            produce_kernel,
        );
        let consume = LoopSpec::new(
            "consume",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
            ],
            consume_kernel,
        );
        let chain = ChainSpec::new("pc", vec![produce, consume], None, &[]).unwrap();
        let sum = LoopSpec::with_gbls(
            "sum_b",
            mesh.nodes,
            vec![
                Arg::dat_direct(b, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::reduction(1)],
            sum_kernel,
        );
        let coords = mesh.dom.dat(mesh.coords).data.clone();
        let own =
            derive_ownership(&mesh.dom, mesh.nodes, rcb_partition(&coords, 2, nparts), nparts);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        Fixture {
            base: mesh.dom,
            layouts,
            nodes: mesh.nodes,
            coords: mesh.coords,
            seed,
            dats: vec![seed, a, b],
            bump,
            chain,
            sum,
        }
    }

    /// The strongly skewed cost field: the left half of the mesh is 8x
    /// hotter, so a weighted re-shard genuinely moves elements.
    fn skew(&self) -> Vec<f64> {
        skewed_costs(&self.base.dat(self.coords).data, 2, 0, 8.0)
    }

    fn job(&self, name: &str, iters: usize, salt: u64) -> Job {
        let n = self.base.dat(self.seed).data.len();
        let init: Vec<f64> = (0..n as u64)
            .map(|i| ((i * 7 + salt * 5 + 3) % 17) as f64)
            .collect();
        Job::new(
            name,
            vec![
                JobStep::Loop(self.bump.clone()),
                JobStep::Chain(self.chain.clone()),
            ],
            iters,
        )
        .finish(vec![JobStep::Loop(self.sum.clone())])
        .with_init(self.seed, init)
    }

    /// Standalone reference on the *pre-migration* layouts — exact
    /// arithmetic makes results partition-independent, so
    /// post-migration jobs must still match it bitwise.
    fn standalone(&self, job: &Job, opts: &RunOptions) -> Reference {
        let mut dom = self.base.clone();
        for (dat, data) in &job.init {
            dom.dat_mut(*dat).data.clone_from(data);
        }
        let out = run_distributed_with(&mut dom, &self.layouts, opts, |env| {
            exec_job_program(env, job)
        });
        let gbls = out.unwrap_results().swap_remove(0);
        let dats = self.dats.iter().map(|&d| dom.dat(d).data.clone()).collect();
        (dats, gbls)
    }

    /// Never-migrated reference: the sequential execution of the same
    /// instruction stream.
    fn sequential_reference(&self, iters: usize) -> Domain {
        let mut dom = self.base.clone();
        for _ in 0..iters {
            op2::core::seq::run_loop(&mut dom, &self.bump);
            for l in &self.chain.loops {
                op2::core::seq::run_loop(&mut dom, l);
            }
        }
        dom
    }
}

/// Segmented supervised execution of the fixture program with one
/// trace-triggered, cost-weighted migration at the first segment
/// boundary — the same detector → re-shard → ship → epoch-fence
/// sequence the app drivers (`run_ca_rebalanced`) execute, inlined so
/// the test controls every knob.
fn run_fixture_rebalanced(
    fx: &Fixture,
    dom: &mut Domain,
    iters: usize,
    opts: &SuperviseOptions,
    post_faults: Option<Arc<FaultPlan>>,
) -> (Vec<RankTrace>, RebalanceRec, Vec<RankLayout>) {
    let nparts = fx.layouts.len();
    let costs = fx.skew();
    let slots: Vec<Arc<Mutex<RankState>>> = (0..nparts)
        .map(|_| Arc::new(Mutex::new(RankState::new())))
        .collect();
    let mut cur = fx.layouts.clone();
    let seg_len = 2usize;
    let mut done = 0usize;
    let mut migrated = false;
    let mut post = false;
    let mut rec = RebalanceRec::default();
    let mut traces = Vec::new();
    while done < iters {
        let seg = seg_len.min(iters - done);
        let mut sopts = opts.clone();
        if post {
            sopts.run.faults = post_faults.clone();
            post = false;
        }
        let (bump, chain) = (&fx.bump, &fx.chain);
        let out = run_supervised_with_state(dom, &cur, &sopts, &slots, |env| {
            for _ in 0..seg {
                run_loop(env, bump)?;
                run_chain(env, chain)?;
            }
            Ok(())
        })
        .expect("supervised segment failed");
        assert!(out.all_ok());
        traces = out.traces;
        done += seg;
        if done >= iters || migrated {
            continue;
        }
        // Trace-triggered: threshold 0 trips on the measured segment
        // wall times; the skewed cost field steers the re-shard.
        let est = detect(&traces, &RebalanceConfig::new(0.0, 8)).expect("threshold 0 must trip");
        let mut ship = opts.run.clone();
        ship.faults = None;
        let outcome = rebalance(
            dom,
            fx.nodes,
            fx.coords,
            2,
            &cur,
            &costs,
            est.imbalance_milli(),
            &ship,
        )
        .expect("migration failed")
        .expect("skewed costs must move elements");
        fence_slots(&slots);
        cur = outcome.layouts;
        rec.add(&outcome.rec);
        migrated = true;
        post = true;
    }
    (traces, rec, cur)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn assert_bitwise_equal(want: &Domain, got: &Domain, dats: &[DatId], label: &str) {
    for &d in dats {
        assert_eq!(
            bits(&want.dat(d).data),
            bits(&got.dat(d).data),
            "{label}: dat `{}` diverged from the never-migrated reference",
            want.dat(d).name
        );
    }
}

/// Acceptance 1 (the ISSUE's non-negotiable contract): a trace-
/// triggered migration at the first segment boundary redistributes
/// work without perturbing a single bit — the migrated run equals the
/// never-migrated reference at 1, 2 and 4 pool threads.
#[test]
fn migrated_run_bitwise_matches_static_at_1_2_4_threads() {
    let iters = 4;
    for n_threads in [1usize, 2, 4] {
        let fx = Fixture::new(4);
        let want = fx.sequential_reference(iters);
        let mut dom = fx.base.clone();
        let run = RunOptions::default()
            .with_threads(n_threads)
            .checkpoint_every(1);
        let (_, rec, final_layouts) =
            run_fixture_rebalanced(&fx, &mut dom, iters, &SuperviseOptions::new(run), None);

        // The migration genuinely happened and shipped elements.
        assert_eq!(rec.migrations, 1, "threads {n_threads}");
        assert!(rec.elements_out > 0, "threads {n_threads}: nothing moved");
        assert!(rec.bytes_out > 0, "threads {n_threads}");
        assert!(rec.replans >= 1, "threads {n_threads}");
        let base = fx.nodes.idx();
        assert!(
            final_layouts
                .iter()
                .zip(&fx.layouts)
                .any(|(a, b)| a.sets[base].n_owned != b.sets[base].n_owned),
            "threads {n_threads}: the re-shard left every rank's owned count unchanged"
        );
        assert_bitwise_equal(&want, &dom, &fx.dats, &format!("threads {n_threads}"));
    }
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use op2::runtime::{Boundary, BoundaryKind, FaultSpec};

    /// Acceptance 2: rank 1 dies at the second chain boundary of the
    /// first *post-migration* segment. The epoch fence dropped every
    /// old-layout checkpoint, so the rollback must land on (and does
    /// land on, per the layout-epoch assertion in the restore path) a
    /// checkpoint of the migrated layout — and the run still finishes
    /// bitwise identical to the never-migrated, never-crashed run.
    #[test]
    fn crash_straddling_migration_recovers_bitwise() {
        let iters = 4;
        let fx = Fixture::new(4);
        let want = fx.sequential_reference(iters);
        let mut dom = fx.base.clone();
        let spec =
            FaultSpec::default().with_crash_site(1, Boundary::new(BoundaryKind::Chain, 1));
        let run = RunOptions::default().with_threads(2).checkpoint_every(1);
        let (traces, rec, _) = run_fixture_rebalanced(
            &fx,
            &mut dom,
            iters,
            &SuperviseOptions::new(run),
            Some(Arc::new(FaultPlan::new(spec))),
        );

        assert_eq!(rec.migrations, 1);
        // The crash fired inside the post-migration segment (whose
        // traces the runner returns) and was rolled back. Attempt
        // counters are cumulative per world: one clean pre-migration
        // segment plus two attempts in the crashed segment.
        let rollbacks: u64 = traces.iter().map(|t| t.recovery.rollbacks).sum();
        assert!(rollbacks >= 1, "the straddling crash never fired");
        for t in &traces {
            assert_eq!(t.recovery.attempts, 3, "rank {}", t.rank);
            assert!(t.recovery.checkpoints > 0, "rank {}", t.rank);
        }
        assert_bitwise_equal(&want, &dom, &fx.dats, "straddling crash");
    }
}

// ---------------------------------------------------------------------
// Service replanning.
// ---------------------------------------------------------------------

/// (per-dat data, rank-0 finish-step gbls) of a standalone reference.
type Reference = (Vec<Vec<f64>>, Vec<Vec<Vec<f64>>>);

fn assert_outcome_matches(
    fx: &Fixture,
    out: &op2::runtime::JobOutcome,
    want: &Reference,
    label: &str,
) {
    for (i, &d) in fx.dats.iter().enumerate() {
        assert_eq!(
            bits(&want.0[i]),
            bits(&out.dats[d.idx()]),
            "{label}: dat `{}` diverged from the standalone reference",
            fx.base.dat(d).name
        );
    }
    assert_eq!(want.1.len(), out.gbls.len(), "{label}: finish-step count");
    for (s, (w, g)) in want.1.iter().zip(&out.gbls).enumerate() {
        for (gi, (a, b)) in w.iter().zip(g).enumerate() {
            assert_eq!(bits(a), bits(b), "{label}: finish step {s} gbl {gi} diverged");
        }
    }
}

/// Acceptance 3: live re-sharding of a resident service world. A
/// balanced world refuses to migrate; a cost-skewed one re-keys under a
/// new signature after exactly one registry invalidation; the old
/// signature turns into typed `UnknownMesh`; the first job on the new
/// signature re-inspects and republishes; the job after it runs
/// inspection-free — and both match the pre-migration standalone
/// reference bitwise.
#[test]
fn service_replans_exactly_once_after_migration() {
    let fx = Fixture::new(4);
    let opts = RunOptions::default().with_threads(2);
    let svc = Service::new(ServiceConfig::default().run(opts.clone()));
    let mesh = svc.register_mesh(fx.base.clone(), fx.layouts.clone());

    // Warm the shared registry: cold job inspects, warm job does not.
    let cold = svc.submit(mesh, &fx.job("cold", 3, 1)).unwrap();
    assert!(cold.trace.plan_total().misses > 0);
    let warm = svc.submit(mesh, &fx.job("warm", 3, 2)).unwrap();
    assert_eq!(warm.trace.plan_total().misses, 0, "second job re-inspected");

    // An unmeasured (balanced) world never trips the detector.
    let idle = vec![RankTrace::default(); 4];
    let balanced = svc
        .rebalance_mesh(mesh, fx.nodes, fx.coords, 2, &idle, &RebalanceConfig::default())
        .unwrap();
    assert!(balanced.is_none(), "a balanced world migrated");
    assert_eq!(svc.metrics().rebalances, 0);

    // A skewed cost field forces a live re-shard.
    let new_mesh = svc
        .rebalance_mesh_with_costs(mesh, fx.nodes, fx.coords, 2, &fx.skew(), 2000)
        .unwrap()
        .expect("skewed costs must move elements");
    assert_ne!(new_mesh, mesh, "migration must change the mesh signature");

    // The old signature is dead.
    match svc.submit(mesh, &fx.job("stale", 1, 3)) {
        Err(ServiceError::UnknownMesh { mesh: m }) => assert_eq!(m, mesh),
        other => panic!("expected UnknownMesh for the old signature, got {other:?}"),
    }

    // First post-migration job: one inspection round, bitwise equal to
    // the reference computed on the pre-migration layouts.
    let job = fx.job("post", 3, 4);
    let want = fx.standalone(&job, &opts);
    let post = svc.submit(new_mesh, &job).unwrap();
    assert!(
        post.trace.plan_total().misses > 0,
        "the registry survived the migration with stale plans"
    );
    assert!(!post.trace.warm);
    assert_outcome_matches(&fx, &post, &want, "first post-migration job");

    // Job N+1 runs inspection-free on the post-migration layout.
    let job2 = fx.job("post-warm", 3, 5);
    let want2 = fx.standalone(&job2, &opts);
    let steady = svc.submit(new_mesh, &job2).unwrap();
    let plan = steady.trace.plan_total();
    assert_eq!(plan.misses, 0, "post-migration steady state re-inspected");
    assert!(plan.registry_hits > 0);
    assert!(steady.trace.warm);
    assert_outcome_matches(&fx, &steady, &want2, "steady post-migration job");

    let m = svc.metrics();
    assert_eq!(m.rebalances, 1, "exactly one migration");
    assert!(m.invalidated_plans >= 1, "the registry was never invalidated");
    assert!(m.migrated_elements > 0);
    assert!(m.migrated_bytes > 0);
    assert_eq!(m.completed, 4);
    assert_eq!(m.failed, 0);
}

// ---------------------------------------------------------------------
// App equivalence. Real CFD kernels round, and the core-first /
// halo-after execution order of indirect Inc contributions at
// partition-boundary nodes depends on the owner assignment — so two
// *static* runs on different partitions already differ by ~1 ULP at a
// handful of boundary entries (measured: ≤ 2e-16 relative on state
// dats, up to ~2e-12 on cancellation-prone residual dats, RMS
// bit-identical). The migrated run is held to exactly that bar against
// the never-migrated run: residual bitwise, every dat entry ≤ 1e-10
// relative.
// ---------------------------------------------------------------------

fn assert_dats_close(want: &Domain, got: &Domain, tol: f64, label: &str) {
    for (a, b) in want.dats().iter().zip(got.dats()) {
        for (k, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            let denom = x.abs().max(y.abs()).max(1e-300);
            assert!(
                (x - y).abs() <= tol * denom,
                "{label}: dat `{}` entry {k}: {x:e} vs {y:e}",
                a.name
            );
        }
    }
}

fn mgcfd_layouts(app: &MgCfd, nparts: usize) -> Vec<RankLayout> {
    let l0 = &app.levels[0];
    let base = rcb_partition(&app.dom.dat(l0.ids.coords).data, 3, nparts);
    let own = derive_ownership(&app.dom, l0.ids.nodes, base, nparts);
    build_layouts(&app.dom, &own, 2)
}

/// A policy that migrates at the first segment boundary regardless of
/// the measured load (threshold 0 always trips) and re-shards from a
/// strongly skewed cost field, so the re-shard genuinely moves elements.
fn forced_policy(app: &MgCfd) -> RebalancePolicy {
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    RebalancePolicy::every(2, RebalanceConfig::new(0.0, 8))
        .with_costs(skewed_costs(coords, 3, 0, 8.0))
}

/// Acceptance 4a: MG-CFD through `run_ca_rebalanced` at 1/2/4 threads.
#[test]
fn mgcfd_migrated_run_matches_static_at_1_2_4_threads() {
    let params = MgCfdParams::small(7);
    let iters = 4;
    for n_threads in [1usize, 2, 4] {
        let mut ref_app = MgCfd::new(params);
        let layouts = mgcfd_layouts(&ref_app, 4);
        let want = mgcfd::run_ca(&mut ref_app, &layouts, iters);

        let mut app = MgCfd::new(params);
        let policy = forced_policy(&app);
        let run = RunOptions::default()
            .with_threads(n_threads)
            .checkpoint_every(1);
        let (out, rec, final_layouts) =
            mgcfd::run_ca_rebalanced(&mut app, &layouts, iters, &SuperviseOptions::new(run), &policy)
                .unwrap_or_else(|e| panic!("threads {n_threads}: {e}"));

        assert_eq!(rec.migrations, 1, "threads {n_threads}");
        assert!(rec.elements_out > 0, "threads {n_threads}: nothing moved");
        assert!(rec.bytes_out > 0, "threads {n_threads}");
        let base = app.levels[0].ids.nodes.idx();
        assert!(
            final_layouts
                .iter()
                .zip(&layouts)
                .any(|(a, b)| a.sets[base].n_owned != b.sets[base].n_owned),
            "threads {n_threads}: the re-shard left every rank's owned count unchanged"
        );

        assert_eq!(
            want.rms.to_bits(),
            out.rms.to_bits(),
            "threads {n_threads}: RMS diverged ({} vs {})",
            want.rms,
            out.rms
        );
        assert_dats_close(
            &ref_app.dom,
            &app.dom,
            1e-10,
            &format!("threads {n_threads}"),
        );
    }
}

/// Acceptance 4b: Hydra's twin driver (strict chains: `Safe` extents).
#[test]
fn hydra_migrated_run_matches_static() {
    let params = HydraParams::small(6);
    let iters = 4;
    let mut ref_app = Hydra::new(params);
    let depth = ref_app.required_depth(ExtentMode::Safe);
    let base = rcb_partition(ref_app.mesh.node_coords(), 3, 4);
    let own = derive_ownership(&ref_app.mesh.dom, ref_app.mesh.nodes, base, 4);
    let layouts = build_layouts(&ref_app.mesh.dom, &own, depth);
    let want = hydra::run_ca(&mut ref_app, &layouts, iters, ExtentMode::Safe);

    let mut app = Hydra::new(params);
    let costs = skewed_costs(app.mesh.node_coords(), 3, 0, 8.0);
    let policy = RebalancePolicy::every(2, RebalanceConfig::new(0.0, 8)).with_costs(costs);
    let run = RunOptions::default().checkpoint_every(1);
    let (out, rec, _) = hydra::run_ca_rebalanced(
        &mut app,
        &layouts,
        iters,
        ExtentMode::Safe,
        &SuperviseOptions::new(run),
        &policy,
    )
    .unwrap();
    assert_eq!(rec.migrations, 1);
    assert!(rec.elements_out > 0);
    assert_eq!(
        want.norm.to_bits(),
        out.norm.to_bits(),
        "norm diverged ({} vs {})",
        want.norm,
        out.norm
    );
    assert_dats_close(&ref_app.mesh.dom, &app.mesh.dom, 1e-10, "hydra");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance 5 (satellite): arbitrary sequences of drifting-cost
    /// re-shards over shuffled meshes preserve every partitioner
    /// invariant the startup path guarantees.
    #[test]
    fn migration_sequences_keep_layouts_consistent(
        nx in 4usize..9,
        ny in 4usize..9,
        nparts in 2usize..5,
        shuffle_seed in 0u64..1000,
        cost_seed in 0u64..1000,
        rounds in 1usize..4,
    ) {
        let mut m = Quad2D::generate(nx, ny);
        shuffle_set(&mut m.dom, m.nodes, shuffle_seed);
        let coords = m.dom.dat(m.coords).data.clone();
        let n = m.dom.set(m.nodes).size;
        let base = rcb_partition(&coords, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base, nparts);
        let mut layouts = build_layouts(&m.dom, &own, 2);

        for round in 0..rounds {
            let costs = drifting_costs(n, cost_seed + round as u64, 6.0);
            let new_base = rcb_partition_weighted(&coords, 2, &costs, nparts);
            // `ownership_from_layouts` itself asserts full coverage —
            // every element of every set owned by exactly one rank.
            let old = ownership_from_layouts(&m.dom, &layouts);
            let plan = plan_migration(&m.dom, m.nodes, &old, new_base.clone(), 2);

            // The requested base assignment is adopted verbatim, and
            // the built layouts round-trip to exactly the planned
            // ownership.
            prop_assert_eq!(&plan.base_owner, &new_base);
            let back = ownership_from_layouts(&m.dom, &plan.layouts);
            prop_assert_eq!(&back.owner, &plan.ownership.owner);

            // Move lists are exactly the ownership diff: ascending ids,
            // endpoints matching old/new owners, complete.
            let mut moved = 0usize;
            for ml in &plan.moves {
                prop_assert!(ml.from != ml.to);
                for sm in &ml.sets {
                    prop_assert!(sm.elems.windows(2).all(|w| w[0] < w[1]));
                    for &e in &sm.elems {
                        prop_assert_eq!(old.of(sm.set, e as usize), ml.from);
                        prop_assert_eq!(plan.ownership.of(sm.set, e as usize), ml.to);
                    }
                    moved += sm.elems.len();
                }
            }
            let mut expect = 0usize;
            for (s, new_own) in plan.ownership.owner.iter().enumerate() {
                expect += old.owner[s].iter().zip(new_own).filter(|(a, b)| a != b).count();
            }
            prop_assert_eq!(moved, expect);

            for l in &plan.layouts {
                // Localized maps resolve for every executable element.
                for (mid, lm) in l.maps.iter().enumerate() {
                    let gm = &m.dom.maps()[mid];
                    let end = l.sets[gm.from.idx()].exec_end(2);
                    for e in 0..end {
                        for i in 0..lm.arity {
                            let v = lm.values[e * lm.arity + i];
                            prop_assert!(v != op2::partition::layout::NONLOCAL);
                        }
                    }
                }
                // Send/recv segment sizes mirror across every pair.
                for nb in &l.neighbors {
                    let peer = &plan.layouts[nb.rank as usize];
                    let back_n = peer.neighbors.iter().find(|p| p.rank == l.rank).unwrap();
                    let sent: usize = back_n.send.iter().map(|s| s.elems.len()).sum();
                    let recvd: usize = nb.recv.iter().map(|r| r.len as usize).sum();
                    prop_assert_eq!(sent, recvd);
                }
            }
            layouts = plan.layouts;
        }
    }
}
