//! End-to-end application tests: MG-CFD and Hydra across back-ends,
//! rank counts, partitioners and meshes.

use op2::hydra::{self, ExtentMode, Hydra, HydraParams};
use op2::mgcfd::{self, MgCfd, MgCfdParams};
use op2::partition::{
    build_layouts, derive_ownership, kway_partition, rcb_partition, rib_partition, RankLayout,
};
use op2_mesh::Csr;

fn norm_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-30)
}

fn mgcfd_layouts(app: &MgCfd, nparts: usize, kway: bool) -> Vec<RankLayout> {
    let l0 = &app.levels[0];
    let base = if kway {
        let graph = Csr::node_graph(app.dom.map(l0.ids.e2n), app.dom.set(l0.ids.nodes).size);
        kway_partition(&graph, nparts, 3)
    } else {
        rcb_partition(&app.dom.dat(l0.ids.coords).data, 3, nparts)
    };
    let own = derive_ownership(&app.dom, l0.ids.nodes, base, nparts);
    build_layouts(&app.dom, &own, 2)
}

/// MG-CFD agrees across rank counts and partitioners.
#[test]
fn mgcfd_rank_count_sweep() {
    let params = MgCfdParams::small(8);
    let iters = 2;
    let mut ref_app = MgCfd::new(params);
    let reference = mgcfd::run_sequential(&mut ref_app, iters);

    for (nparts, kway) in [(1, false), (3, false), (6, false), (4, true)] {
        let mut app = MgCfd::new(params);
        let layouts = mgcfd_layouts(&app, nparts, kway);
        let out = mgcfd::run_ca(&mut app, &layouts, iters);
        assert!(
            norm_close(reference.rms, out.rms, 1e-10),
            "nparts {nparts} kway {kway}: {} vs {}",
            reference.rms,
            out.rms
        );
    }
}

/// Longer synthetic chains stay correct and reduce messages more.
#[test]
fn mgcfd_chain_length_sweep() {
    for nchains in [1, 4, 8] {
        let mut params = MgCfdParams::small(8);
        params.nchains = nchains;
        let iters = 2;

        let mut seq_app = MgCfd::new(params);
        let reference = mgcfd::run_sequential(&mut seq_app, iters);

        let mut ca_app = MgCfd::new(params);
        let layouts = mgcfd_layouts(&ca_app, 4, false);
        let ca = mgcfd::run_ca(&mut ca_app, &layouts, iters);
        assert!(
            norm_close(reference.rms, ca.rms, 1e-10),
            "nchains {nchains}"
        );
        // The grouped exchange carries dpres (dirtied by write_pres
        // every iteration, imported to depth 2) — and possibly dres,
        // though the runtime's multi-level validity usually proves the
        // previous chain execution left dres deep enough (the paper's
        // single dirty bit would re-exchange it). Never more than the
        // 2 dats of §4.1.2, always at depth r = 2.
        for (rank, t) in ca.traces.iter().enumerate() {
            if layouts[rank].neighbors.is_empty() {
                continue;
            }
            for c in &t.chains {
                assert!(
                    (1..=2).contains(&c.d_exchanged),
                    "rank {rank} nchains {nchains}: {} dats",
                    c.d_exchanged
                );
                assert_eq!(c.depth, 2);
            }
        }
    }
}

/// MG-CFD with a single multigrid level and with three levels.
#[test]
fn mgcfd_multigrid_depth_sweep() {
    for levels in [1, 2, 3] {
        let mut params = MgCfdParams::small(9);
        params.levels = levels;
        let iters = 2;
        let mut seq_app = MgCfd::new(params);
        let reference = mgcfd::run_sequential(&mut seq_app, iters);
        let mut app = MgCfd::new(params);
        let layouts = mgcfd_layouts(&app, 4, false);
        let out = mgcfd::run_op2(&mut app, &layouts, iters);
        assert!(
            norm_close(reference.rms, out.rms, 1e-10),
            "levels {levels}: {} vs {}",
            reference.rms,
            out.rms
        );
    }
}

fn hydra_layouts(app: &Hydra, nparts: usize, depth: usize) -> Vec<RankLayout> {
    let base = rib_partition(app.mesh.node_coords(), 3, nparts);
    let own = derive_ownership(&app.mesh.dom, app.mesh.nodes, base, nparts);
    build_layouts(&app.mesh.dom, &own, depth)
}

/// Hydra safe-mode CA across rank counts.
#[test]
fn hydra_rank_count_sweep() {
    let params = HydraParams::small(6);
    let iters = 2;
    let mut ref_app = Hydra::new(params);
    let reference = hydra::run_sequential(&mut ref_app, iters);

    for nparts in [1, 2, 5] {
        let mut app = Hydra::new(params);
        let depth = app.required_depth(ExtentMode::Safe);
        let layouts = hydra_layouts(&app, nparts, depth);
        let out = hydra::run_ca(&mut app, &layouts, iters, ExtentMode::Safe);
        assert!(
            norm_close(reference.norm, out.norm, 1e-10),
            "nparts {nparts}: {} vs {}",
            reference.norm,
            out.norm
        );
    }
}

/// Paper-mode execution is stable over more iterations (staleness does
/// not accumulate into divergence).
#[test]
fn hydra_paper_mode_stable_over_iterations() {
    let params = HydraParams::small(6);
    let iters = 5;
    let mut ref_app = Hydra::new(params);
    let reference = hydra::run_sequential(&mut ref_app, iters);

    let mut app = Hydra::new(params);
    let depth = app.required_depth(ExtentMode::Paper);
    let layouts = hydra_layouts(&app, 4, depth);
    let out = hydra::run_ca(&mut app, &layouts, iters, ExtentMode::Paper);
    assert!(out.norm.is_finite());
    assert!(
        norm_close(reference.norm, out.norm, 0.05),
        "{} vs {}",
        reference.norm,
        out.norm
    );
}

/// The vflux chain's grouped exchange carries the five Table-4 dats on
/// every rank that talks to neighbours.
#[test]
fn hydra_vflux_exchanges_five_dats() {
    let params = HydraParams::small(7);
    let mut app = Hydra::new(params);
    let depth = app.required_depth(ExtentMode::Safe);
    let layouts = hydra_layouts(&app, 4, depth);
    let out = hydra::run_ca(&mut app, &layouts, 1, ExtentMode::Safe);
    for (rank, t) in out.traces.iter().enumerate() {
        if layouts[rank].neighbors.is_empty() {
            continue;
        }
        let vflux = t
            .chains
            .iter()
            .find(|c| c.name == "vflux")
            .expect("vflux chain ran");
        assert_eq!(vflux.d_exchanged, 5, "rank {rank}");
    }
}
