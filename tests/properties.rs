//! Property-based tests (proptest) over randomly generated meshes,
//! partitions and chain structures: the invariants DESIGN.md §7 lists.

use op2::core::chain::{calc_halo_extents, calc_halo_layers, core_depths};
use op2::core::{parse_chain_config, AccessMode, Arg, LoopSig, SetId};
use op2::mesh::{Hex3D, Hex3DParams, Quad2D};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, rib_partition};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partitioners assign every element exactly once and leave no
    /// empty part (whenever `n >= nparts`).
    #[test]
    fn partitioners_cover_and_balance(
        nx in 3usize..10,
        ny in 3usize..10,
        nz in 3usize..6,
        nparts in 1usize..9,
        rib in proptest::bool::ANY,
    ) {
        let m = Hex3D::generate(Hex3DParams { nx, ny, nz });
        let owner = if rib {
            rib_partition(m.node_coords(), 3, nparts)
        } else {
            rcb_partition(m.node_coords(), 3, nparts)
        };
        prop_assert_eq!(owner.len(), nx * ny * nz);
        let mut sizes = vec![0usize; nparts];
        for &o in &owner {
            prop_assert!((o as usize) < nparts);
            sizes[o as usize] += 1;
        }
        prop_assert!(sizes.iter().all(|&s| s > 0));
        let target = (nx * ny * nz) as f64 / nparts as f64;
        for &s in &sizes {
            prop_assert!((s as f64) <= target * 1.1 + 2.0);
        }
    }

    /// Halo-ring invariants on random meshes and partitions:
    /// every map entry a→b satisfies ring(b) ≤ max(ring(a), 1) and
    /// ring(a) ≤ ring(b) + 1 (within the built depth), and execute
    /// ranges resolve entirely through localized maps.
    #[test]
    fn ring_invariants_random_mesh(
        nx in 4usize..9,
        ny in 4usize..9,
        nparts in 2usize..6,
        depth in 1usize..4,
    ) {
        let m = Quad2D::generate(nx, ny);
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base, nparts);
        let layouts = build_layouts(&m.dom, &own, depth);
        for l in &layouts {
            // Owned + imports per set never exceed the global size, and
            // locals are unique.
            for (sidx, sl) in l.sets.iter().enumerate() {
                let mut seen = std::collections::HashSet::new();
                for &g in &sl.locals {
                    prop_assert!(seen.insert(g), "duplicate local");
                    prop_assert!((g as usize) < m.dom.sets()[sidx].size);
                }
                // Core prefixes are monotone.
                for k in 1..sl.core_prefix.len() {
                    prop_assert!(sl.core_prefix[k] <= sl.core_prefix[k - 1]);
                }
            }
            // Localized maps resolve for every element executable at
            // the built depth.
            for (mid, lm) in l.maps.iter().enumerate() {
                let gm = &m.dom.maps()[mid];
                let end = l.sets[gm.from.idx()].exec_end(depth);
                for e in 0..end {
                    for i in 0..lm.arity {
                        let v = lm.values[e * lm.arity + i];
                        prop_assert!(v != op2::partition::layout::NONLOCAL);
                        prop_assert!((v as usize) < l.sets[gm.to.idx()].n_local());
                    }
                }
            }
            // Send/recv segment sizes mirror across the pair.
            for n in &l.neighbors {
                let peer = &layouts[n.rank as usize];
                let back = peer.neighbors.iter().find(|p| p.rank == l.rank).unwrap();
                let sent: usize = back.send.iter().map(|s| s.elems.len()).sum();
                let recvd: usize = n.recv.iter().map(|r| r.len as usize).sum();
                prop_assert_eq!(sent, recvd);
            }
        }
    }

    /// Algorithm 3 and the transitive closure both stay within
    /// 1 ..= n, and the closure dominates per-dat demands.
    #[test]
    fn analysis_bounds(
        n_loops in 1usize..7,
        seed in 0u64..5000,
    ) {
        // Random chain: each loop INCs one dat and READs another.
        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng >> 33) as usize
        };
        let sigs: Vec<LoopSig> = (0..n_loops)
            .map(|i| {
                let write_dat = op2::core::DatId((next() % 4) as u32);
                let read_dat = op2::core::DatId((next() % 4) as u32);
                let mut args = vec![Arg::dat_indirect(
                    write_dat,
                    op2::core::MapId(0),
                    0,
                    AccessMode::Inc,
                )];
                if read_dat != write_dat {
                    args.push(Arg::dat_indirect(
                        read_dat,
                        op2::core::MapId(0),
                        0,
                        AccessMode::Read,
                    ));
                }
                LoopSig { name: format!("l{i}"), set: SetId(0), args }
            })
            .collect();
        let alg3 = calc_halo_layers(&sigs);
        let safe = calc_halo_extents(&sigs);
        let cores = core_depths(&sigs);
        for l in 0..n_loops {
            prop_assert!(alg3.per_loop[l] >= 1 && alg3.per_loop[l] <= n_loops);
            prop_assert!(safe[l] >= 1 && safe[l] <= n_loops);
            prop_assert!(cores[l] >= 1 && cores[l] <= n_loops);
            // Note: neither analysis dominates the other — the literal
            // Alg 3 *accumulates* consecutive indirect reads of a dat
            // (branch 2 adds a layer per read), while the transitive
            // closure takes the max demand; conversely Alg 3 misses
            // transitive ladders. Only the bounds are invariant.
        }
        // The final loop never needs more than the standard halo.
        prop_assert_eq!(safe[n_loops - 1], 1);
    }

    /// The chain configuration parser round-trips what it accepts.
    #[test]
    fn config_parser_roundtrip(
        n_chains in 1usize..4,
        n_loops in 1usize..6,
        max_halo in proptest::option::of(1usize..5),
    ) {
        let mut text = String::new();
        for c in 0..n_chains {
            text.push_str(&format!("chain c{c} {{\n"));
            let names: Vec<String> = (0..n_loops).map(|i| format!("loop{i}")).collect();
            text.push_str(&format!("  loops = {}\n", names.join(", ")));
            if let Some(h) = max_halo {
                text.push_str(&format!("  max_halo = {h}\n"));
            }
            text.push_str("}\n");
        }
        let parsed = parse_chain_config(&text).unwrap();
        prop_assert_eq!(parsed.len(), n_chains);
        for c in &parsed {
            prop_assert_eq!(c.loops.len(), n_loops);
            prop_assert_eq!(c.max_halo, max_halo);
        }
    }

    /// Lazy execution (automatic chain detection) matches eager per-loop
    /// execution exactly for random sequences of produce/consume loops.
    #[test]
    fn lazy_matches_eager(
        seq_len in 1usize..7,
        seed in 0u64..1000,
        max_chain in 2usize..5,
    ) {
        use op2::core::{seq, Arg as A, Args, LoopSpec};
        use op2::runtime::LazyExec;
        use op2::runtime::run_distributed;

        // Both kernels: read args 0-1 (src), increment args 2-3 (dst).
        fn k_produce(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) + 1.0);
            args.inc(3, 0, args.get(1, 0) + 1.0);
        }
        fn k_consume(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) - args.get(1, 0));
            args.inc(3, 0, args.get(1, 0));
        }

        let mut m = Quad2D::generate(8, 8);
        let n = m.dom.set(m.nodes).size;
        let s0: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 13) as f64).collect();
        let dats = [
            m.dom.decl_dat("d0", m.nodes, 1, s0),
            m.dom.decl_dat_zeros("d1", m.nodes, 1),
            m.dom.decl_dat_zeros("d2", m.nodes, 1),
        ];

        // Random loop sequence over the three dats.
        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(7);
            (rng >> 33) as usize
        };
        let loops: Vec<LoopSpec> = (0..seq_len)
            .map(|i| {
                // src and dst must differ: reading a dat while
                // incrementing it through the same map is inherently
                // order-dependent and outside the abstraction's
                // commutativity contract.
                let si = next() % 3;
                let di = (si + 1 + next() % 2) % 3;
                let (src, dst) = (dats[si], dats[di]);
                LoopSpec::new(
                    &format!("l{i}"),
                    m.edges,
                    vec![
                        A::dat_indirect(src, m.e2n, 0, AccessMode::Read),
                        A::dat_indirect(src, m.e2n, 1, AccessMode::Read),
                        A::dat_indirect(dst, m.e2n, 0, AccessMode::Inc),
                        A::dat_indirect(dst, m.e2n, 1, AccessMode::Inc),
                    ],
                    if i % 2 == 0 { k_produce } else { k_consume },
                )
            })
            .collect();

        let mut seq_dom = m.dom.clone();
        for l in &loops {
            seq::run_loop(&mut seq_dom, l);
        }

        let depth = 3;
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, 3);
        let own = derive_ownership(&m.dom, m.nodes, base, 3);
        let layouts = build_layouts(&m.dom, &own, depth);
        run_distributed(&mut m.dom, &layouts, |env| {
            let mut lazy = LazyExec::new(depth, max_chain);
            for l in &loops {
                lazy.enqueue(env, l)?;
            }
            lazy.flush(env)
        })
        .unwrap_results();
        for &d in &dats {
            prop_assert_eq!(&seq_dom.dat(d).data, &m.dom.dat(d).data);
        }
    }

    /// Greedy loop colorings are valid (no two same-color iterations
    /// modify the same element) and minimal-ish — within the greedy
    /// bound `max conflict degree + 1` — on random 2-D quad and 3-D tet
    /// meshes. Block colorings from the threaded subsystem at block
    /// size 1 agree with the element-level checker through the
    /// `element_coloring` bridge.
    #[test]
    fn colorings_valid_and_bounded(
        nx in 3usize..9,
        ny in 3usize..9,
        nz in 2usize..5,
        tet in proptest::bool::ANY,
    ) {
        use op2::core::par::{color_blocks, is_valid_block_coloring};
        use op2::core::{color_loop, is_valid_coloring, AccessMode as AM, LoopSpec};
        use op2::mesh::Tet3D;

        fn noop(_: &op2::core::Args<'_>) {}

        let (mut dom, nodes, edges, e2n) = if tet {
            let m = Tet3D::generate(nx.min(6), ny.min(6), nz);
            (m.dom, m.nodes, m.edges, m.e2n)
        } else {
            let m = Quad2D::generate(nx, ny);
            (m.dom, m.nodes, m.edges, m.e2n)
        };
        let a = dom.decl_dat_zeros("a", nodes, 1);
        let spec = LoopSpec::new(
            "inc",
            edges,
            vec![
                Arg::dat_indirect(a, e2n, 0, AM::Inc),
                Arg::dat_indirect(a, e2n, 1, AM::Inc),
            ],
            noop,
        );
        let sig = spec.sig();

        let c = color_loop(&dom, &sig);
        prop_assert!(is_valid_coloring(&dom, &sig, &c));
        // Complete partition of the iteration space.
        let total: usize = c.by_color.iter().map(Vec::len).sum();
        prop_assert_eq!(total, dom.set(edges).size);

        // Minimality bound: greedy needs at most one more color than
        // the max conflict degree (edges sharing a node with e).
        let md = &dom.maps()[e2n.idx()];
        let mut node_deg = vec![0usize; dom.set(nodes).size];
        for &v in &md.values {
            node_deg[v as usize] += 1;
        }
        let n_edges = dom.set(edges).size;
        let max_conflicts = (0..n_edges)
            .map(|e| {
                (0..md.arity)
                    .map(|i| node_deg[md.values[e * md.arity + i] as usize] - 1)
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0);
        prop_assert!(
            c.n_colors <= max_conflicts + 1,
            "{} colors > degree bound {}",
            c.n_colors,
            max_conflicts + 1
        );

        // The threaded subsystem's block coloring at block size 1 is an
        // element coloring and passes the same validity checker.
        let bc = color_blocks(&dom, &sig, 1);
        prop_assert!(is_valid_block_coloring(&dom, &sig, &bc));
        prop_assert!(is_valid_coloring(&dom, &sig, &bc.element_coloring()));
    }

    /// Ownership inheritance covers every set and respects the base
    /// assignment exactly.
    #[test]
    fn ownership_total_and_consistent(
        nx in 3usize..8,
        ny in 3usize..8,
        nparts in 1usize..6,
    ) {
        let m = Quad2D::generate(nx, ny);
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base.clone(), nparts);
        prop_assert_eq!(&own.owner[m.nodes.idx()], &base);
        for (sidx, o) in own.owner.iter().enumerate() {
            prop_assert_eq!(o.len(), m.dom.sets()[sidx].size);
            prop_assert!(o.iter().all(|&r| (r as usize) < nparts));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sparse-tiled chain execution equals plain sweeps exactly for
    /// random meshes, chain lengths and tile counts (integer data).
    #[test]
    fn tiled_matches_plain_random(
        nx in 4usize..9,
        ny in 4usize..9,
        n_pairs in 1usize..4,
        n_tiles in 1usize..9,
    ) {
        use op2::core::tiling::{build_tile_plan, run_chain_tiled, seed_blocks};
        use op2::core::{seq, Args, ChainSpec, LoopSpec};

        fn produce(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) + 1.0);
            args.inc(3, 0, args.get(1, 0) + 1.0);
        }
        fn consume(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) - args.get(1, 0));
            args.inc(3, 0, args.get(1, 0));
        }

        let mut m = Quad2D::generate(nx, ny);
        let n = m.dom.set(m.nodes).size;
        let s0: Vec<f64> = (0..n).map(|i| ((i * 7 + 2) % 11) as f64).collect();
        let d0 = m.dom.decl_dat("d0", m.nodes, 1, s0);
        let d1 = m.dom.decl_dat_zeros("d1", m.nodes, 1);
        let d2 = m.dom.decl_dat_zeros("d2", m.nodes, 1);

        // Alternating produce(d0→d1) / consume(d1→d2) pairs.
        let mut loops = Vec::new();
        for _ in 0..n_pairs {
            loops.push(LoopSpec::new(
                "produce",
                m.edges,
                vec![
                    Arg::dat_indirect(d0, m.e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d0, m.e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d1, m.e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d1, m.e2n, 1, AccessMode::Inc),
                ],
                produce,
            ));
            loops.push(LoopSpec::new(
                "consume",
                m.edges,
                vec![
                    Arg::dat_indirect(d1, m.e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d1, m.e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d2, m.e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d2, m.e2n, 1, AccessMode::Inc),
                ],
                consume,
            ));
        }
        let chain = ChainSpec::new("rnd", loops, None, &[]).unwrap();

        let mut plain = m.dom.clone();
        for l in &chain.loops {
            seq::run_loop(&mut plain, l);
        }
        let n_edges = m.dom.set(m.edges).size;
        let seed = seed_blocks(n_edges, n_tiles);
        let plan = build_tile_plan(&m.dom, &chain.sigs(), &seed);
        // Every loop fully scheduled.
        for j in 0..chain.len() {
            prop_assert_eq!(plan.loop_total(j), n_edges);
        }
        run_chain_tiled(&mut m.dom, &chain, &plan);
        for d in [d0, d1, d2] {
            prop_assert_eq!(&plain.dat(d).data, &m.dom.dat(d).data);
        }
    }

    /// The planned chain executor is a pure replay: on random 2-D quad
    /// and 3-D tet meshes, running a produce/consume chain through the
    /// cached-plan path yields bitwise-identical dat data AND identical
    /// chain trace records (grouped-message layout included) to the
    /// unplanned inline-analysis executor — and repeat invocations are
    /// served from the plan cache instead of re-inspecting.
    #[test]
    fn planned_chain_replay_is_bitwise_equal(
        nx in 4usize..8,
        ny in 4usize..8,
        nz in 2usize..5,
        nparts in 2usize..5,
        tet in proptest::bool::ANY,
    ) {
        use op2::core::{Args, ChainSpec, Domain, LoopSpec};
        use op2::mesh::Tet3D;
        use op2::runtime::exec::{run_chain, run_chain_unplanned};
        use op2::runtime::run_distributed;

        fn produce(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) + 1.0);
            args.inc(3, 0, args.get(1, 0) + 1.0);
        }
        fn consume(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) - args.get(1, 0));
            args.inc(3, 0, args.get(1, 0) * 0.5);
        }

        let (mut dom, nodes, edges, e2n, coords, cdim) = if tet {
            let m = Tet3D::generate(nx.min(6), ny.min(6), nz);
            (m.dom, m.nodes, m.edges, m.e2n, m.coords, 3)
        } else {
            let m = Quad2D::generate(nx, ny);
            (m.dom, m.nodes, m.edges, m.e2n, m.coords, 2)
        };
        let n = dom.set(nodes).size;
        let s0: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 23) as f64).collect();
        let d0 = dom.decl_dat("d0", nodes, 1, s0);
        let d1 = dom.decl_dat_zeros("d1", nodes, 1);
        let chain = ChainSpec::new(
            "pc",
            vec![
                LoopSpec::new(
                    "produce",
                    edges,
                    vec![
                        Arg::dat_indirect(d0, e2n, 0, AccessMode::Read),
                        Arg::dat_indirect(d0, e2n, 1, AccessMode::Read),
                        Arg::dat_indirect(d1, e2n, 0, AccessMode::Inc),
                        Arg::dat_indirect(d1, e2n, 1, AccessMode::Inc),
                    ],
                    produce,
                ),
                LoopSpec::new(
                    "consume",
                    edges,
                    vec![
                        Arg::dat_indirect(d1, e2n, 0, AccessMode::Read),
                        Arg::dat_indirect(d1, e2n, 1, AccessMode::Read),
                        Arg::dat_indirect(d0, e2n, 0, AccessMode::Inc),
                        Arg::dat_indirect(d0, e2n, 1, AccessMode::Inc),
                    ],
                    consume,
                ),
            ],
            None,
            &[],
        )
        .unwrap();

        let run = |dom: &mut Domain, planned: bool| {
            let base = rcb_partition(&dom.dat(coords).data, cdim, nparts);
            let own = derive_ownership(dom, nodes, base, nparts);
            let layouts = build_layouts(dom, &own, 2);
            let out = run_distributed(dom, &layouts, |env| {
                for _ in 0..3 {
                    if planned {
                        run_chain(env, &chain)?;
                    } else {
                        run_chain_unplanned(env, &chain)?;
                    }
                }
                Ok(())
            });
            assert!(out.all_ok(), "failures: {:?}", out.failures());
            let data: Vec<Vec<f64>> =
                [d0, d1].iter().map(|&d| dom.dat(d).data.clone()).collect();
            (out.traces, data)
        };

        let mut dom_a = dom.clone();
        let (traces_planned, data_planned) = run(&mut dom_a, true);
        let (traces_unplanned, data_unplanned) = run(&mut dom, false);

        // Bitwise-equal results.
        prop_assert_eq!(&data_planned, &data_unplanned);
        // Identical chain records: same grouped exchange (message
        // counts, bytes, neighbour sets), same core/halo splits.
        for (tp, tu) in traces_planned.iter().zip(&traces_unplanned) {
            prop_assert_eq!(&tp.chains, &tu.chains);
            // 3 invocations over at most 2 dirty-state classes: the
            // third is always served from the cache.
            prop_assert!(
                tp.plan.hits >= 1 && tp.plan.misses <= 2,
                "rank {}: {:?}", tp.rank, tp.plan
            );
            // The unplanned path never touches the cache.
            prop_assert_eq!(tu.plan.hits + tu.plan.misses, 0);
        }
    }

    /// Fault injection is deterministic: replaying the same seeded
    /// [`FaultPlan`] over the same program yields bit-identical traces —
    /// same loop/chain records, same recovery counters per rank — and
    /// bit-identical data, regardless of thread scheduling. The faults
    /// are recoverable (no blackholes/crashes), so the results also
    /// equal the sequential reference exactly.
    #[test]
    fn fault_replay_is_deterministic(
        fault_seed in 0u64..10_000,
        nparts in 2usize..5,
        drop in 0u16..400,
        dup in 0u16..400,
        corrupt in 0u16..400,
    ) {
        use op2::core::{seq, Args, ChainSpec, LoopSpec};
        use op2::runtime::exec::{run_chain, run_loop};
        use op2::runtime::{run_distributed_with, FaultPlan, FaultSpec, RunOptions};

        fn bump(args: &Args<'_>) {
            args.set(0, 0, args.get(0, 0) + 1.0);
        }
        fn produce(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) + 1.0);
            args.inc(3, 0, args.get(1, 0) + 1.0);
        }
        fn consume(args: &Args<'_>) {
            args.inc(2, 0, args.get(0, 0) - args.get(1, 0));
            args.inc(3, 0, args.get(1, 0));
        }

        let build = || {
            let mut m = Quad2D::generate(8, 7);
            let n = m.dom.set(m.nodes).size;
            let s0: Vec<f64> = (0..n).map(|i| ((i * 3 + 2) % 17) as f64).collect();
            let d0 = m.dom.decl_dat("d0", m.nodes, 1, s0);
            let d1 = m.dom.decl_dat_zeros("d1", m.nodes, 1);
            let d2 = m.dom.decl_dat_zeros("d2", m.nodes, 1);
            let bump_loop = LoopSpec::new(
                "bump",
                m.nodes,
                vec![Arg::dat_direct(d0, AccessMode::Rw)],
                bump,
            );
            let chain = ChainSpec::new(
                "pc",
                vec![
                    LoopSpec::new(
                        "produce",
                        m.edges,
                        vec![
                            Arg::dat_indirect(d0, m.e2n, 0, AccessMode::Read),
                            Arg::dat_indirect(d0, m.e2n, 1, AccessMode::Read),
                            Arg::dat_indirect(d1, m.e2n, 0, AccessMode::Inc),
                            Arg::dat_indirect(d1, m.e2n, 1, AccessMode::Inc),
                        ],
                        produce,
                    ),
                    LoopSpec::new(
                        "consume",
                        m.edges,
                        vec![
                            Arg::dat_indirect(d1, m.e2n, 0, AccessMode::Read),
                            Arg::dat_indirect(d1, m.e2n, 1, AccessMode::Read),
                            Arg::dat_indirect(d2, m.e2n, 0, AccessMode::Inc),
                            Arg::dat_indirect(d2, m.e2n, 1, AccessMode::Inc),
                        ],
                        consume,
                    ),
                ],
                None,
                &[],
            )
            .unwrap();
            (m, bump_loop, chain, [d0, d1, d2])
        };

        let run = || {
            let (mut m, bump_loop, chain, dats) = build();
            let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
            let own = derive_ownership(&m.dom, m.nodes, base, nparts);
            let layouts = build_layouts(&m.dom, &own, 2);
            let spec = FaultSpec {
                drop_permille: drop,
                dup_permille: dup,
                corrupt_permille: corrupt,
                delay_permille: 150,
                ..FaultSpec::chaos(fault_seed)
            };
            let opts = RunOptions::with_faults(FaultPlan::new(spec));
            let out = run_distributed_with(&mut m.dom, &layouts, &opts, |env| {
                for _ in 0..2 {
                    run_loop(env, &bump_loop)?;
                    run_chain(env, &chain)?;
                }
                Ok(())
            });
            assert!(out.all_ok(), "failures: {:?}", out.failures());
            let data: Vec<Vec<f64>> = dats.iter().map(|&d| m.dom.dat(d).data.clone()).collect();
            (out.traces, data, dats, m)
        };

        let (traces_a, data_a, dats, _m) = run();
        let (traces_b, data_b, _, _) = run();
        // Bit-identical replay: full traces (loop/chain records AND
        // per-rank transport recovery counters) and final data.
        prop_assert_eq!(&traces_a, &traces_b);
        prop_assert_eq!(&data_a, &data_b);

        // Recoverable faults leave the numerics untouched: equal to the
        // sequential reference exactly.
        let (mut m_seq, bump_loop, chain, _) = build();
        for _ in 0..2 {
            seq::run_loop(&mut m_seq.dom, &bump_loop);
            for l in &chain.loops {
                seq::run_loop(&mut m_seq.dom, l);
            }
        }
        for (i, &d) in dats.iter().enumerate() {
            prop_assert_eq!(&m_seq.dom.dat(d).data, &data_a[i]);
        }
    }
}
