//! Recovery suite: the self-healing supervisor under injected rank
//! deaths and stragglers.
//!
//! Gated behind the (default-on) `chaos` feature like `tests/chaos.rs`.
//!
//! The contract under test (DESIGN.md §13): a run that crashes and
//! recovers `k` times is **bitwise identical** to a fault-free run.
//! Five behaviours are pinned down:
//!
//! 1. **Exhaustive crash sweep**: killing rank 1 once at *every*
//!    chain-loop boundary of a multi-loop chain program — at 1, 2 and 4
//!    pool threads — recovers through coordinated rollback and replays
//!    to results bitwise equal to the sequential reference.
//! 2. **Randomized crashes** (proptest): random victim rank, boundary
//!    kind/index and checkpoint cadence all recover bitwise.
//! 3. **A slow rank is not a false positive**: a stall well inside the
//!    receive deadline triggers no rollback and no escalation.
//! 4. **A straggler past the deadline is escalated, not killed**: the
//!    supervisor classifies pure timeouts as slowness, doubles the
//!    deadline, and converges — still bitwise equal.
//! 5. **A permanent fault degrades gracefully**: the unlimited legacy
//!    crash re-fires every attempt until the recovery budget runs out,
//!    surfacing as typed `RecoveryExhausted` naming the dead rank.

#![cfg(feature = "chaos")]

use std::time::Duration;

use op2::core::{AccessMode, Arg, Args, ChainSpec, DatId, Domain, LoopSpec};
use op2::mesh::Quad2D;
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::exec::{run_chain, run_loop};
use op2::runtime::{
    run_supervised, Boundary, BoundaryKind, CommConfig, FaultPlan, FaultSpec, RankFailure,
    RunOptions, RuntimeError, SuperviseOptions,
};
use proptest::prelude::*;

fn produce_kernel(args: &Args<'_>) {
    args.inc(0, 0, args.get(2, 0) + 1.0);
    args.inc(1, 0, args.get(3, 0) + 2.0);
}

fn consume_kernel(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0));
    args.inc(3, 0, args.get(1, 0));
}

fn bump_kernel(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) + 1.0);
}

struct Setup {
    mesh: Quad2D,
    layouts: Vec<RankLayout>,
    /// Direct RW loop on `seed`: dirties its halo every iteration so
    /// each chain execution genuinely exchanges.
    bump: LoopSpec,
    chain: ChainSpec,
    dats: Vec<DatId>,
}

fn setup(nparts: usize) -> Setup {
    let mut mesh = Quad2D::generate(10, 8);
    let n = mesh.dom.set(mesh.nodes).size;
    let seed: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64).collect();
    let dseed = mesh.dom.decl_dat("seed", mesh.nodes, 1, seed);
    let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
    let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
    let bump = LoopSpec::new(
        "bump",
        mesh.nodes,
        vec![Arg::dat_direct(dseed, AccessMode::Rw)],
        bump_kernel,
    );
    let produce = LoopSpec::new(
        "produce",
        mesh.edges,
        vec![
            Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
            Arg::dat_indirect(dseed, mesh.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(dseed, mesh.e2n, 1, AccessMode::Read),
        ],
        produce_kernel,
    );
    let consume = LoopSpec::new(
        "consume",
        mesh.edges,
        vec![
            Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
            Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
        ],
        consume_kernel,
    );
    let chain = ChainSpec::new("pc", vec![produce, consume], None, &[]).unwrap();
    let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, nparts);
    let own = derive_ownership(&mesh.dom, mesh.nodes, base, nparts);
    let layouts = build_layouts(&mesh.dom, &own, 2);
    Setup {
        mesh,
        layouts,
        bump,
        chain,
        dats: vec![dseed, a, b],
    }
}

/// The sequential reference for `iters` iterations of the test program.
fn sequential_reference(setup: &Setup, iters: usize) -> Domain {
    let mut seq_dom = setup.mesh.dom.clone();
    for _ in 0..iters {
        op2::core::seq::run_loop(&mut seq_dom, &setup.bump);
        for l in &setup.chain.loops {
            op2::core::seq::run_loop(&mut seq_dom, l);
        }
    }
    seq_dom
}

/// Run the test program supervised under `opts` and return the outcome.
fn run_program(
    s: &mut Setup,
    iters: usize,
    opts: &SuperviseOptions,
) -> Result<op2::runtime::DistOutcome<()>, RuntimeError> {
    let bump = &s.bump;
    let chain = &s.chain;
    run_supervised(&mut s.mesh.dom, &s.layouts, opts, |env| {
        for _ in 0..iters {
            run_loop(env, bump)?;
            run_chain(env, chain)?;
        }
        Ok(())
    })
}

fn assert_bitwise_equal(seq_dom: &Domain, got: &Domain, dats: &[DatId], label: &str) {
    for &d in dats {
        let want: Vec<u64> = seq_dom.dat(d).data.iter().map(|x| x.to_bits()).collect();
        let have: Vec<u64> = got.dat(d).data.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            want,
            have,
            "{label}: dat `{}` diverged from the fault-free reference",
            seq_dom.dat(d).name
        );
    }
}

/// Acceptance 1 (the ISSUE's non-negotiable contract): kill rank 1 once
/// at every chain-loop boundary the program crosses, at 1/2/4 threads;
/// every variant must recover through a coordinated rollback and finish
/// bitwise identical to the fault-free reference.
#[test]
fn crash_at_every_chain_loop_boundary_recovers_bitwise() {
    let iters = 3;
    let n_boundaries = iters * 2; // two loops per chain crossing
    for n_threads in [1usize, 2, 4] {
        for k in 0..n_boundaries {
            let mut s = setup(4);
            let seq_dom = sequential_reference(&s, iters);
            let spec = FaultSpec::default()
                .with_crash_site(1, Boundary::new(BoundaryKind::ChainLoop, k as u64));
            let run = RunOptions::with_faults(FaultPlan::new(spec))
                .with_threads(n_threads)
                .checkpoint_every(1);
            let out = run_program(&mut s, iters, &SuperviseOptions::new(run))
                .unwrap_or_else(|e| {
                    panic!("threads {n_threads}, ChainLoop {k}: supervision failed: {e}")
                });
            assert!(out.all_ok());
            assert_bitwise_equal(
                &seq_dom,
                &s.mesh.dom,
                &s.dats,
                &format!("threads {n_threads}, ChainLoop boundary {k}"),
            );
            // The crash genuinely fired and was rolled back, exactly once.
            for t in &out.traces {
                assert_eq!(t.recovery.attempts, 2, "rank {}", t.rank);
                assert_eq!(t.recovery.rollbacks, 1, "rank {}", t.rank);
                assert!(t.recovery.checkpoints > 0, "rank {}", t.rank);
                // Crashes inside the first chain (k < 2) roll back to
                // the baseline with an empty journal; later ones must
                // replay the journaled prefix.
                assert!(
                    t.recovery.replayed_loops + t.recovery.replayed_chains > 0 || k < 2,
                    "rank {}: rollback replayed nothing past the baseline",
                    t.rank
                );
                assert_eq!(t.recovery.escalations, 0, "rank {}", t.rank);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance 2: random victim, random boundary coordinate, random
    /// checkpoint cadence — recovery is always bitwise exact.
    #[test]
    fn random_crash_sites_recover_bitwise(
        victim in 0u32..4,
        kind in 0usize..3,
        index in 0u64..6,
        every in 1u64..4,
    ) {
        let iters = 3;
        let kind = [BoundaryKind::Loop, BoundaryKind::Chain, BoundaryKind::ChainLoop][kind];
        let mut s = setup(4);
        let seq_dom = sequential_reference(&s, iters);
        let spec = FaultSpec::default()
            .with_crash_site(victim, Boundary::new(kind, index));
        let run = RunOptions::with_faults(FaultPlan::new(spec)).checkpoint_every(every);
        let out = run_program(&mut s, iters, &SuperviseOptions::new(run));
        let out = match out {
            Ok(o) => o,
            Err(e) => return Err(TestCaseError::fail(format!("supervision failed: {e}"))),
        };
        prop_assert!(out.all_ok());
        for &d in &s.dats {
            let want: Vec<u64> =
                seq_dom.dat(d).data.iter().map(|x| x.to_bits()).collect();
            let have: Vec<u64> =
                s.mesh.dom.dat(d).data.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(want, have, "dat `{}` diverged", seq_dom.dat(d).name);
        }
        // Whether the site fired depends on the coordinate being in
        // range; either way the run must end clean, and if it fired the
        // rollback must be recorded.
        let fired = out.traces.iter().any(|t| t.recovery.rollbacks > 0);
        if fired {
            for t in &out.traces {
                prop_assert_eq!(t.recovery.attempts, 2);
            }
        }
    }
}

/// Acceptance 3: a rank that is merely slow — stalled well inside the
/// receive deadline — must not be killed, rolled back, or escalated.
#[test]
fn slow_rank_is_not_a_false_positive() {
    let iters = 3;
    let mut s = setup(4);
    let seq_dom = sequential_reference(&s, iters);
    let spec = FaultSpec::default().with_stall(
        1,
        Boundary::new(BoundaryKind::Loop, 0),
        Duration::from_millis(300),
    );
    let run = RunOptions::with_faults(FaultPlan::new(spec))
        .comm_config(CommConfig {
            deadline: Duration::from_secs(30),
            ..CommConfig::default()
        })
        .checkpoint_every(1);
    let out = run_program(&mut s, iters, &SuperviseOptions::new(run)).unwrap();
    assert!(out.all_ok());
    assert_bitwise_equal(&seq_dom, &s.mesh.dom, &s.dats, "slow rank");
    for t in &out.traces {
        assert_eq!(t.recovery.attempts, 1, "rank {} was retried", t.rank);
        assert_eq!(t.recovery.rollbacks, 0, "rank {} was rolled back", t.rank);
        assert_eq!(t.recovery.escalations, 0, "rank {} escalated", t.rank);
    }
}

/// Acceptance 4: a straggler past the deadline is classified as
/// slowness, not death — the supervisor doubles the deadline (recorded
/// as an escalation), retries, and converges bitwise exact.
#[test]
fn straggler_escalates_deadline_and_recovers() {
    let iters = 2;
    let mut s = setup(2);
    let seq_dom = sequential_reference(&s, iters);
    // Rank 1 stalls for 600ms every attempt; the 250ms deadline loses
    // twice (250 → 500) and wins at 1000ms.
    let spec = FaultSpec::default().with_stall(
        1,
        Boundary::new(BoundaryKind::Loop, 0),
        Duration::from_millis(600),
    );
    let run = RunOptions::with_faults(FaultPlan::new(spec))
        .comm_config(CommConfig {
            deadline: Duration::from_millis(250),
            ..CommConfig::default()
        })
        .checkpoint_every(1);
    let out = run_program(&mut s, iters, &SuperviseOptions::new(run)).unwrap();
    assert!(out.all_ok());
    assert_bitwise_equal(&seq_dom, &s.mesh.dom, &s.dats, "straggler");
    for t in &out.traces {
        assert!(
            t.recovery.escalations >= 1,
            "rank {}: straggler never escalated the deadline",
            t.rank
        );
        assert!(t.recovery.rollbacks >= 1, "rank {}", t.rank);
        assert!(t.recovery.attempts >= 2, "rank {}", t.rank);
    }
}

/// Acceptance 5: a *permanent* fault — the legacy unlimited crash that
/// re-fires on every attempt — exhausts the recovery budget and
/// surfaces as typed `RecoveryExhausted` carrying the per-rank traces
/// and the dead rank's failure.
#[test]
fn permanent_crash_exhausts_recovery_budget() {
    let iters = 3;
    let mut s = setup(4);
    let spec =
        FaultSpec::default().with_crash(1, Boundary::new(BoundaryKind::Chain, 0));
    let run = RunOptions::with_faults(FaultPlan::new(spec)).checkpoint_every(1);
    let opts = SuperviseOptions::new(run).max_recoveries(2);
    let err = run_program(&mut s, iters, &opts).expect_err("permanent fault must exhaust");
    match &err {
        RuntimeError::RecoveryExhausted {
            attempts,
            traces,
            failures,
        } => {
            assert_eq!(*attempts, 3, "budget 2 allows exactly 3 attempts");
            assert_eq!(traces.len(), 4);
            assert!(
                failures.iter().any(|f| matches!(
                    f,
                    RankFailure::Panicked { rank: 1, message }
                        if message.contains("rank 1 crashed")
                )),
                "the dead rank is not named: {failures:?}"
            );
        }
        other => panic!("expected RecoveryExhausted, got {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("recovery budget exhausted"),
        "unhelpful message: {msg}"
    );
}

/// Supervision of a fault-free run is invisible in the results (bitwise
/// equal to the reference) and records exactly one attempt with live
/// checkpoints — the overhead-only baseline the bench report measures.
#[test]
fn fault_free_supervised_run_is_bitwise_transparent() {
    let iters = 4;
    let mut s = setup(4);
    let seq_dom = sequential_reference(&s, iters);
    let run = RunOptions::default().checkpoint_every(2);
    let out = run_program(&mut s, iters, &SuperviseOptions::new(run)).unwrap();
    assert!(out.all_ok());
    assert_bitwise_equal(&seq_dom, &s.mesh.dom, &s.dats, "fault-free supervised");
    for t in &out.traces {
        assert_eq!(t.recovery.attempts, 1);
        assert_eq!(t.recovery.rollbacks, 0);
        // Baseline + every second chain completion.
        assert_eq!(t.recovery.checkpoints, 1 + iters as u64 / 2);
        // Incremental snapshots: the untouched coord dat is never
        // re-copied after the baseline.
        assert!(
            t.recovery.dats_skipped > 0,
            "rank {}: dirty tracking never skipped a clean dat",
            t.rank
        );
    }
}
