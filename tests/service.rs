//! Service suite: the resident multi-job mesh-compute server
//! (DESIGN.md §14).
//!
//! The contract under test: a job submitted to a [`Service`] produces
//! results **bitwise identical** to a standalone
//! `run_distributed` execution of the very same [`exec_job_program`]
//! instruction stream — regardless of thread count, of how many jobs
//! ran on the world before it, of concurrent submitters, and of a
//! crash-and-rollback in the middle of the job. On top of identity:
//!
//! 1. **Standalone equivalence sweep**: two back-to-back jobs at 1, 2
//!    and 4 pool threads each match their standalone reference, and the
//!    second job runs entirely on shared registry plans (zero chain
//!    inspections).
//! 2. **Randomized equivalence** (proptest): random initial state,
//!    iteration count and thread count all match standalone bitwise.
//! 3. **Concurrent tenants are isolated**: submitter threads racing on
//!    one world each get exactly their own job's results.
//! 4. **Crash isolation** (chaos): a job that loses a rank mid-run
//!    recovers via rollback to its own bitwise-exact result, without
//!    tearing down the world — its neighbors and successors are
//!    untouched and still warm.
//! 5. **Admission control**: an oversized batch is rejected as typed
//!    `Saturated` without leaking capacity.
//! 6. **Steady state**: job 2 performs zero inspections; job 3 performs
//!    zero payload heap allocations.

use op2::core::{AccessMode, Arg, Args, ChainSpec, DatId, Domain, GblDecl, LoopSpec};
use op2::mesh::Quad2D;
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::{
    exec_job_program, run_distributed_with, Job, JobStep, RunOptions, Service, ServiceConfig,
    ServiceError,
};
use proptest::prelude::*;

fn produce_kernel(args: &Args<'_>) {
    args.inc(0, 0, args.get(2, 0) + 1.0);
    args.inc(1, 0, args.get(3, 0) + 2.0);
}

fn consume_kernel(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0));
    args.inc(3, 0, args.get(1, 0));
}

fn bump_kernel(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) + 1.0);
}

fn sum_kernel(args: &Args<'_>) {
    args.inc(1, 0, args.get(0, 0));
}

struct Fixture {
    /// The pristine domain registered with the service; standalone
    /// references run on clones of it.
    base: Domain,
    layouts: Vec<RankLayout>,
    seed: DatId,
    dats: Vec<DatId>,
    bump: LoopSpec,
    chain: ChainSpec,
    sum: LoopSpec,
}

impl Fixture {
    fn new(nparts: usize) -> Self {
        let mut mesh = Quad2D::generate(10, 8);
        let n = mesh.dom.set(mesh.nodes).size;
        let seed0: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64).collect();
        let seed = mesh.dom.decl_dat("seed", mesh.nodes, 1, seed0);
        let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
        let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
        let bump = LoopSpec::new(
            "bump",
            mesh.nodes,
            vec![Arg::dat_direct(seed, AccessMode::Rw)],
            bump_kernel,
        );
        let produce = LoopSpec::new(
            "produce",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
                Arg::dat_indirect(seed, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(seed, mesh.e2n, 1, AccessMode::Read),
            ],
            produce_kernel,
        );
        let consume = LoopSpec::new(
            "consume",
            mesh.edges,
            vec![
                Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
                Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
                Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
                Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
            ],
            consume_kernel,
        );
        let chain = ChainSpec::new("pc", vec![produce, consume], None, &[]).unwrap();
        let sum = LoopSpec::with_gbls(
            "sum_b",
            mesh.nodes,
            vec![
                Arg::dat_direct(b, AccessMode::Read),
                Arg::gbl(0, AccessMode::Inc),
            ],
            vec![GblDecl::reduction(1)],
            sum_kernel,
        );
        let coords = mesh.dom.dat(mesh.coords).data.clone();
        let own = derive_ownership(&mesh.dom, mesh.nodes, rcb_partition(&coords, 2, nparts), nparts);
        let layouts = build_layouts(&mesh.dom, &own, 2);
        Fixture {
            base: mesh.dom,
            layouts,
            seed,
            dats: vec![seed, a, b],
            bump,
            chain,
            sum,
        }
    }

    /// The canonical job shape: bump + CA chain per iteration, one
    /// residual reduction at the end, seeded with `salt`-dependent
    /// initial state so distinct jobs are distinguishable bitwise.
    fn job(&self, name: &str, iters: usize, salt: u64) -> Job {
        let n = self.base.dat(self.seed).data.len();
        let init: Vec<f64> = (0..n as u64)
            .map(|i| ((i * 7 + salt * 5 + 3) % 17) as f64)
            .collect();
        Job::new(
            name,
            vec![
                JobStep::Loop(self.bump.clone()),
                JobStep::Chain(self.chain.clone()),
            ],
            iters,
        )
        .finish(vec![JobStep::Loop(self.sum.clone())])
        .with_init(self.seed, init)
    }

    /// Standalone reference: the same job program on a pristine clone
    /// of the base domain under plain (unsupervised, fault-free)
    /// `run_distributed_with`. Returns (per-dat data, rank-0 gbls).
    fn standalone(&self, job: &Job, opts: &RunOptions) -> Reference {
        let mut dom = self.base.clone();
        for (dat, data) in &job.init {
            dom.dat_mut(*dat).data.clone_from(data);
        }
        let out = run_distributed_with(&mut dom, &self.layouts, opts, |env| {
            exec_job_program(env, job)
        });
        let gbls = out.unwrap_results().swap_remove(0);
        let dats = self.dats.iter().map(|&d| dom.dat(d).data.clone()).collect();
        (dats, gbls)
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// (per-dat data, rank-0 finish-step gbls) of a standalone reference.
type Reference = (Vec<Vec<f64>>, Vec<Vec<Vec<f64>>>);

fn assert_outcome_matches(
    fx: &Fixture,
    out: &op2::runtime::JobOutcome,
    want_dats: &[Vec<f64>],
    want_gbls: &[Vec<Vec<f64>>],
    label: &str,
) {
    for (i, &d) in fx.dats.iter().enumerate() {
        assert_eq!(
            bits(&want_dats[i]),
            bits(&out.dats[d.idx()]),
            "{label}: dat `{}` diverged from the standalone reference",
            fx.base.dat(d).name
        );
    }
    assert_eq!(want_gbls.len(), out.gbls.len(), "{label}: finish-step count");
    for (s, (want, got)) in want_gbls.iter().zip(&out.gbls).enumerate() {
        for (g, (w, h)) in want.iter().zip(got).enumerate() {
            assert_eq!(bits(w), bits(h), "{label}: finish step {s} gbl {g} diverged");
        }
    }
}

/// Acceptance 1: back-to-back jobs at 1/2/4 threads each bitwise equal
/// their standalone reference, and the second job on the mesh skips
/// inspection entirely — every plan comes out of the shared registry.
#[test]
fn service_jobs_match_standalone_at_1_2_4_threads() {
    for n_threads in [1usize, 2, 4] {
        let fx = Fixture::new(4);
        let opts = RunOptions::default().with_threads(n_threads);
        let svc = Service::new(ServiceConfig::default().run(opts.clone()));
        let mesh = svc.register_mesh(fx.base.clone(), fx.layouts.clone());
        for (round, salt) in [(0u64, 11u64), (1, 22)] {
            let job = fx.job("sweep", 3, salt);
            let (want_dats, want_gbls) = fx.standalone(&job, &opts);
            let out = svc
                .submit(mesh, &job)
                .unwrap_or_else(|e| panic!("threads {n_threads}, round {round}: {e}"));
            assert_outcome_matches(
                &fx,
                &out,
                &want_dats,
                &want_gbls,
                &format!("threads {n_threads}, round {round}"),
            );
            let plan = out.trace.plan_total();
            if round == 0 {
                assert!(plan.misses > 0, "cold job inspected nothing");
                assert!(!out.trace.warm);
            } else {
                assert_eq!(
                    plan.misses, 0,
                    "threads {n_threads}: warm job re-inspected a chain"
                );
                assert!(plan.registry_hits > 0, "threads {n_threads}");
                assert!(out.trace.warm, "threads {n_threads}");
            }
        }
        let m = svc.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.warm_jobs, 1);
        assert!(m.registry_plans >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Acceptance 2: random initial state, iteration count and thread
    /// count — the service result is always bitwise equal to standalone.
    #[test]
    fn random_jobs_match_standalone(
        salt in 0u64..1000,
        iters in 1usize..4,
        threads_idx in 0usize..3,
    ) {
        let n_threads = [1usize, 2, 4][threads_idx];
        let fx = Fixture::new(4);
        let opts = RunOptions::default().with_threads(n_threads);
        let svc = Service::new(ServiceConfig::default().run(opts.clone()));
        let mesh = svc.register_mesh(fx.base.clone(), fx.layouts.clone());
        let job = fx.job("rand", iters, salt);
        let (want_dats, want_gbls) = fx.standalone(&job, &opts);
        let out = match svc.submit(mesh, &job) {
            Ok(o) => o,
            Err(e) => return Err(TestCaseError::fail(format!("submit failed: {e}"))),
        };
        for (i, &d) in fx.dats.iter().enumerate() {
            prop_assert_eq!(bits(&want_dats[i]), bits(&out.dats[d.idx()]));
        }
        prop_assert_eq!(want_gbls.len(), out.gbls.len());
        for (want, got) in want_gbls.iter().zip(&out.gbls) {
            for (w, h) in want.iter().zip(got) {
                prop_assert_eq!(bits(w), bits(h));
            }
        }
    }
}

/// Acceptance 3: N submitter threads racing on one world each receive
/// exactly their own job's results — per-job domain clones and trace
/// isolation mean no tenant ever observes another's state.
#[test]
fn concurrent_jobs_are_isolated_and_bitwise_exact() {
    let fx = Fixture::new(4);
    let opts = RunOptions::default().with_threads(2);
    let svc = Service::new(ServiceConfig::default().run(opts.clone()));
    let mesh = svc.register_mesh(fx.base.clone(), fx.layouts.clone());
    // Distinct salts *and* iteration counts: every tenant's bitwise
    // signature is unique, so cross-tenant leakage cannot cancel out.
    let tenants: Vec<(Job, Reference)> = (0..4)
        .map(|t| {
            let job = fx.job("tenant", 1 + t % 3, 100 + t as u64);
            let want = fx.standalone(&job, &opts);
            (job, want)
        })
        .collect();
    std::thread::scope(|scope| {
        for (t, (job, (want_dats, want_gbls))) in tenants.iter().enumerate() {
            let (svc, fx) = (&svc, &fx);
            scope.spawn(move || {
                let out = svc
                    .submit(mesh, job)
                    .unwrap_or_else(|e| panic!("tenant {t}: {e}"));
                assert_outcome_matches(fx, &out, want_dats, want_gbls, &format!("tenant {t}"));
            });
        }
    });
    let m = svc.metrics();
    assert_eq!(m.completed, 4);
    assert_eq!(m.failed, 0);
    assert_eq!(svc.inflight(), 0, "a permit leaked");
}

/// Acceptance 5: an oversized batch is rejected up front as typed
/// `Saturated`, per-job accounting records every rejection, and the
/// failed admission leaks no capacity — the next job sails through.
#[test]
fn saturation_is_typed_and_leaks_no_capacity() {
    let fx = Fixture::new(2);
    let svc = Service::new(ServiceConfig::default().max_inflight(2));
    let mesh = svc.register_mesh(fx.base.clone(), fx.layouts.clone());
    let jobs: Vec<Job> = (0..3).map(|t| fx.job("burst", 1, t)).collect();
    match svc.submit_batch(mesh, &jobs) {
        Err(ServiceError::Saturated { inflight, max }) => {
            assert_eq!(inflight, 0);
            assert_eq!(max, 2);
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    assert_eq!(svc.metrics().rejected, 3);
    assert_eq!(svc.inflight(), 0);
    svc.submit(mesh, &jobs[0]).expect("capacity must recover after a rejection");
}

/// Acceptance 6 (the ISSUE's steady-state criterion): on one mesh, the
/// second job performs zero chain inspections and by the third job the
/// recycled warm pools absorb every payload — zero heap allocations.
#[test]
fn steady_state_reaches_zero_inspection_and_zero_allocs() {
    let fx = Fixture::new(4);
    let svc = Service::new(ServiceConfig::default());
    let mesh = svc.register_mesh(fx.base.clone(), fx.layouts.clone());
    let cold = svc.submit(mesh, &fx.job("cold", 3, 1)).unwrap();
    assert!(cold.trace.plan_total().misses > 0);
    let warm = svc.submit(mesh, &fx.job("warm", 3, 2)).unwrap();
    let plan = warm.trace.plan_total();
    assert_eq!(plan.misses, 0, "second job inspected a chain");
    assert!(plan.registry_hits > 0);
    let steady = svc.submit(mesh, &fx.job("steady", 3, 3)).unwrap();
    assert_eq!(
        steady.trace.payload_allocs(),
        0,
        "steady-state job allocated payload buffers"
    );
    assert_eq!(steady.trace.plan_total().misses, 0);
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use op2::runtime::{Boundary, BoundaryKind, FaultPlan, FaultSpec};

    /// Acceptance 4: one tenant loses rank 1 mid-run and recovers via
    /// the checkpoint/rollback path to a bitwise-exact result; a tenant
    /// racing it and the job after it are untouched — the world is
    /// never torn down and stays warm across the crash.
    #[test]
    fn crashing_job_recovers_bitwise_and_neighbors_are_unaffected() {
        let fx = Fixture::new(4);
        let opts = RunOptions::default().with_threads(2);
        let svc = Service::new(ServiceConfig::default().run(opts.clone()));
        let mesh = svc.register_mesh(fx.base.clone(), fx.layouts.clone());
        // Warm the world so the crash hits a registry-backed job.
        svc.submit(mesh, &fx.job("warmup", 2, 7)).unwrap();

        let spec = FaultSpec::default()
            .with_crash_site(1, Boundary::new(BoundaryKind::Chain, 1));
        let faulted = fx
            .job("victim", 3, 8)
            .with_faults(FaultPlan::new(spec))
            .checkpoint_every(1);
        let clean = fx.job("bystander", 2, 9);
        // The reference is fault-free by construction: standalone runs
        // ignore `Job::faults` (they are applied by the service only).
        let want_faulted = fx.standalone(&faulted, &opts);
        let want_clean = fx.standalone(&clean, &opts);

        std::thread::scope(|scope| {
            let (svc, fx) = (&svc, &fx);
            let (faulted, clean) = (&faulted, &clean);
            let (want_faulted, want_clean) = (&want_faulted, &want_clean);
            scope.spawn(move || {
                let out = svc.submit(mesh, faulted).expect("victim must recover");
                assert_outcome_matches(fx, &out, &want_faulted.0, &want_faulted.1, "victim");
                let roll: u64 = out.trace.ranks.iter().map(|t| t.recovery.rollbacks).sum();
                assert!(roll > 0, "the crash never fired or was not rolled back");
                for t in &out.trace.ranks {
                    assert_eq!(t.recovery.attempts, 2, "rank {}", t.rank);
                }
            });
            scope.spawn(move || {
                let out = svc.submit(mesh, clean).expect("bystander must be unaffected");
                assert_outcome_matches(fx, &out, &want_clean.0, &want_clean.1, "bystander");
                for t in &out.trace.ranks {
                    assert_eq!(
                        t.recovery.rollbacks, 0,
                        "rank {}: a neighbor's crash leaked into this job",
                        t.rank
                    );
                }
            });
        });

        // The crash did not cost the world its warm state: the next job
        // still runs inspection-free on the shared registry.
        let after = svc.submit(mesh, &fx.job("after", 3, 10)).unwrap();
        assert_eq!(after.trace.plan_total().misses, 0, "crash evicted the registry");
        let (want_dats, want_gbls) = fx.standalone(&fx.job("after", 3, 10), &opts);
        assert_outcome_matches(&fx, &after, &want_dats, &want_gbls, "post-crash job");
        let m = svc.metrics();
        assert!(m.recoveries >= 1, "the recovery was not accounted");
        assert_eq!(m.failed, 0);
        assert_eq!(m.completed, 4);
    }
}
