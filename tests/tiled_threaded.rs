//! Tiled-threaded executor equivalence properties.
//!
//! The leveled tile schedule extends the determinism contract to the
//! sparse-tiled chain executor: inter-tile conflict levels order every
//! conflicting tile pair the same way the sequential tile-by-tile walk
//! does (ascending tile id), so running same-level tiles concurrently
//! is *bitwise identical* to the sequential tiled run — which is itself
//! bitwise identical to plain sequential execution. These properties
//! pin the full three-way identity on randomly generated 2-D quad and
//! 3-D tet meshes, for chains with `OP_INC` through maps, at 1, 2 and 4
//! pool threads.
//!
//! The kernels keep all values dyadic rationals of small magnitude, so
//! floating-point addition is exact and the sequential reference is
//! bit-comparable even across the distributed runs' local renumbering.

use op2::core::{seq, AccessMode, Arg, Args, ChainSpec, DatId, Domain, LoopSpec, SetId};
use op2::mesh::{Quad2D, Tet3D};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::exec::{run_chain_tiled, run_loop};
use op2::runtime::{run_distributed_with, RankTrace, RunOptions, SchedKind, Threading};
use proptest::prelude::*;

fn bump(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) + 1.0);
}
fn produce(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) + 1.0);
    args.inc(3, 0, args.get(1, 0) + 1.0);
}
fn consume(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) - args.get(1, 0));
    args.inc(3, 0, args.get(1, 0) * 0.5);
}

struct Case {
    dom: Domain,
    nodes: SetId,
    coords: DatId,
    cdim: usize,
    dats: [DatId; 2],
    bump_loop: LoopSpec,
    chain: ChainSpec,
}

fn build_case(nx: usize, ny: usize, nz: usize, tet: bool) -> Case {
    let (mut dom, nodes, edges, e2n, coords, cdim) = if tet {
        let m = Tet3D::generate(nx.min(6), ny.min(6), nz);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 3)
    } else {
        let m = Quad2D::generate(nx, ny);
        (m.dom, m.nodes, m.edges, m.e2n, m.coords, 2)
    };
    let n = dom.set(nodes).size;
    let s0: Vec<f64> = (0..n).map(|i| ((i * 11 + 5) % 19) as f64).collect();
    let d0 = dom.decl_dat("d0", nodes, 1, s0);
    let d1 = dom.decl_dat_zeros("d1", nodes, 1);
    let bump_loop = LoopSpec::new(
        "bump",
        nodes,
        vec![Arg::dat_direct(d0, AccessMode::Rw)],
        bump,
    );
    let chain = ChainSpec::new(
        "tt",
        vec![
            LoopSpec::new(
                "produce",
                edges,
                vec![
                    Arg::dat_indirect(d0, e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d0, e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d1, e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d1, e2n, 1, AccessMode::Inc),
                ],
                produce,
            ),
            LoopSpec::new(
                "consume",
                edges,
                vec![
                    Arg::dat_indirect(d1, e2n, 0, AccessMode::Read),
                    Arg::dat_indirect(d1, e2n, 1, AccessMode::Read),
                    Arg::dat_indirect(d0, e2n, 0, AccessMode::Inc),
                    Arg::dat_indirect(d0, e2n, 1, AccessMode::Inc),
                ],
                consume,
            ),
        ],
        None,
        &[],
    )
    .unwrap();
    Case {
        dom,
        nodes,
        coords,
        cdim,
        dats: [d0, d1],
        bump_loop,
        chain,
    }
}

fn layouts_for(case: &Case, nparts: usize) -> Vec<RankLayout> {
    let base = rcb_partition(&case.dom.dat(case.coords).data, case.cdim, nparts);
    let own = derive_ownership(&case.dom, case.nodes, base, nparts);
    build_layouts(&case.dom, &own, 2)
}

/// Three distributed iterations of bump + tiled chain under
/// `threading` (three, so iterations 2 and 3 share a dirty class and
/// repeat invocations provably hit the cached tile schedule). Returns
/// the per-rank traces plus the dats' bit patterns.
fn run_tiled(
    case: &Case,
    dom: &mut Domain,
    layouts: &[RankLayout],
    n_tiles: usize,
    threading: Threading,
) -> (Vec<RankTrace>, Vec<Vec<u64>>) {
    let opts = RunOptions::default().threading(threading);
    let out = run_distributed_with(dom, layouts, &opts, |env| {
        for _ in 0..3 {
            run_loop(env, &case.bump_loop)?;
            run_chain_tiled(env, &case.chain, n_tiles)?;
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());
    let data = case
        .dats
        .iter()
        .map(|&d| dom.dat(d).data.iter().map(|x| x.to_bits()).collect())
        .collect();
    (out.traces, data)
}

/// The sequential reference of the same program: dat bit patterns.
fn run_seq(case: &Case) -> Vec<Vec<u64>> {
    let mut dom = case.dom.clone();
    for _ in 0..3 {
        seq::run_loop(&mut dom, &case.bump_loop);
        for l in &case.chain.loops {
            seq::run_loop(&mut dom, l);
        }
    }
    case.dats
        .iter()
        .map(|&d| dom.dat(d).data.iter().map(|x| x.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Threaded-tiled == sequential-tiled == plain sequential, to the
    /// bit, at 1/2/4 threads and random tile counts — and the threaded
    /// runs are trace-equivalent to the sequential tiled run on every
    /// record thread count cannot touch (loops, chains, exchange
    /// totals). The tile schedule is built once per (plan, tile count):
    /// repeat invocations hit the cache.
    #[test]
    fn tiled_threaded_bitwise_and_trace_equal(
        nx in 4usize..8,
        ny in 4usize..8,
        nz in 2usize..4,
        nparts in 2usize..4,
        n_tiles in 2usize..7,
        tet in proptest::bool::ANY,
    ) {
        let case = build_case(nx, ny, nz, tet);
        let seq_bits = run_seq(&case);

        let layouts = layouts_for(&case, nparts);
        let mut dom_ref = case.dom.clone();
        let (traces_ref, bits_ref) =
            run_tiled(&case, &mut dom_ref, &layouts, n_tiles, Threading::single());
        prop_assert_eq!(&bits_ref, &seq_bits, "sequential tiled != seq");
        for t in &traces_ref {
            prop_assert!(t.threads.is_empty(), "rank {}: unexpected ThreadRec", t.rank);
            prop_assert!(t.plan.tile_misses >= 1, "rank {}: no tiling inspection", t.rank);
            prop_assert!(t.plan.tile_hits >= 1, "rank {}: repeats must hit the cache", t.rank);
        }

        for n_threads in [1usize, 2, 4] {
            let threading = Threading { n_threads, block_size: 4, auto_block: false };
            let mut dom = case.dom.clone();
            let (traces, bits) = run_tiled(&case, &mut dom, &layouts, n_tiles, threading);
            prop_assert_eq!(&bits, &seq_bits, "{} threads: data != seq", n_threads);
            for (t, tr) in traces.iter().zip(&traces_ref) {
                prop_assert_eq!(&t.loops, &tr.loops, "rank {} loop records", t.rank);
                prop_assert_eq!(&t.chains, &tr.chains, "rank {} chain records", t.rank);
                prop_assert_eq!(t.total_msgs(), tr.total_msgs());
                prop_assert_eq!(t.total_bytes(), tr.total_bytes());
                prop_assert_eq!(t.plan.tile_misses, tr.plan.tile_misses);
                for rec in t.threads.iter().filter(|r| r.kind == SchedKind::Tiled) {
                    prop_assert_eq!(rec.n_threads, n_threads);
                    prop_assert_eq!(rec.level_ns.len(), rec.n_levels);
                    prop_assert_eq!(rec.block_size, 0);
                }
            }
        }
    }
}

// Deterministic (non-property) check that the tiled-threaded path
// actually puts same-level tiles through the pool on a mesh big enough
// for real inter-tile parallelism, so the property above isn't
// vacuously comparing sequential fallbacks.
#[test]
fn tiled_threaded_path_engages_on_large_mesh() {
    let case = build_case(16, 16, 2, false);
    let layouts = layouts_for(&case, 2);

    let mut dom_ref = case.dom.clone();
    let (_, bits_ref) = run_tiled(&case, &mut dom_ref, &layouts, 8, Threading::single());
    assert_eq!(bits_ref, run_seq(&case));

    let mut dom = case.dom.clone();
    let (traces, bits) = run_tiled(&case, &mut dom, &layouts, 8, Threading::with_threads(4));
    assert_eq!(bits, bits_ref);
    let tiled: Vec<_> = traces
        .iter()
        .flat_map(|t| &t.threads)
        .filter(|r| r.kind == SchedKind::Tiled)
        .collect();
    assert!(
        !tiled.is_empty(),
        "no rank recorded a tiled pool execution"
    );
    for rec in tiled {
        assert_eq!(rec.n_threads, 4);
        assert_eq!(rec.level_ns.len(), rec.n_levels);
        assert!(rec.n_chunks > rec.n_levels, "no level holds more than one tile");
    }
}
