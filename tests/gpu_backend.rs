//! GPU back-end integration: the simulated device produces identical
//! numerics and the staging accounting matches the paper's pipeline
//! structure (per-loop staging under OP2, one pair per chain under CA).

use op2::core::{seq, AccessMode, Arg, Args, ChainSpec, LoopSpec};
use op2::gpu::{gpu_place, run_chain_gpu, run_loop_gpu, GpuDevice};
use op2::mesh::{Hex3D, Hex3DParams};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::run_distributed;

fn produce_kernel(args: &Args<'_>) {
    args.inc(0, 0, args.get(2, 0) + 1.0);
    args.inc(1, 0, args.get(3, 0) + 2.0);
}

fn consume_kernel(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0));
    args.inc(3, 0, args.get(1, 0));
}

struct Setup {
    mesh: Hex3D,
    layouts: Vec<RankLayout>,
    seed_bump: LoopSpec,
    produce: LoopSpec,
    consume: LoopSpec,
    dats: Vec<op2::core::DatId>,
}

fn setup(nparts: usize) -> Setup {
    let mut mesh = Hex3D::generate(Hex3DParams::cube(8));
    let n = mesh.dom.set(mesh.nodes).size;
    let seed: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) % 17) as f64).collect();
    let dseed = mesh.dom.decl_dat("seed", mesh.nodes, 1, seed);
    let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
    let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
    fn bump(args: &Args<'_>) {
        args.set(0, 0, args.get(0, 0) * 2.0);
    }
    let seed_bump = LoopSpec::new(
        "bump",
        mesh.nodes,
        vec![Arg::dat_direct(dseed, AccessMode::Rw)],
        bump,
    );
    let produce = LoopSpec::new(
        "produce",
        mesh.edges,
        vec![
            Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
            Arg::dat_indirect(dseed, mesh.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(dseed, mesh.e2n, 1, AccessMode::Read),
        ],
        produce_kernel,
    );
    let consume = LoopSpec::new(
        "consume",
        mesh.edges,
        vec![
            Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
            Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
        ],
        consume_kernel,
    );
    let base = rcb_partition(mesh.node_coords(), 3, nparts);
    let own = derive_ownership(&mesh.dom, mesh.nodes, base, nparts);
    let layouts = build_layouts(&mesh.dom, &own, 2);
    Setup {
        mesh,
        layouts,
        seed_bump,
        produce,
        consume,
        dats: vec![dseed, a, b],
    }
}

/// GPU CA equals the sequential reference bit for bit on integer data.
#[test]
fn gpu_ca_exact_equivalence() {
    let Setup {
        mut mesh,
        layouts,
        seed_bump,
        produce,
        consume,
        dats,
    } = setup(4);
    let chain =
        ChainSpec::new("pc", vec![produce.clone(), consume.clone()], None, &[]).unwrap();

    let mut seq_dom = mesh.dom.clone();
    seq::run_loop(&mut seq_dom, &seed_bump);
    seq::run_loop(&mut seq_dom, &produce);
    seq::run_loop(&mut seq_dom, &consume);

    run_distributed(&mut mesh.dom, &layouts, |env| {
        let mut dev = GpuDevice::v100();
        gpu_place(env, &mut dev);
        run_loop_gpu(env, &mut dev, &seed_bump)?;
        run_chain_gpu(env, &mut dev, &chain)
    })
    .unwrap_results();
    for d in dats {
        assert_eq!(seq_dom.dat(d).data, mesh.dom.dat(d).data);
    }
}

/// The CA pipeline stages strictly fewer host↔device events than the
/// per-loop pipeline for the same program — the §3.3 mechanism.
#[test]
fn ca_stages_fewer_events_than_per_loop() {
    let events = |ca: bool| {
        let Setup {
            mut mesh,
            layouts,
            seed_bump,
            produce,
            consume,
            ..
        } = setup(4);
        let chain =
            ChainSpec::new("pc", vec![produce.clone(), consume.clone()], None, &[]).unwrap();
        let out = run_distributed(&mut mesh.dom, &layouts, |env| {
            let mut dev = GpuDevice::v100();
            gpu_place(env, &mut dev);
            for _ in 0..4 {
                run_loop_gpu(env, &mut dev, &seed_bump)?;
                if ca {
                    run_chain_gpu(env, &mut dev, &chain)?;
                } else {
                    run_loop_gpu(env, &mut dev, &produce)?;
                    run_loop_gpu(env, &mut dev, &consume)?;
                }
            }
            Ok(dev.xfer)
        });
        out.unwrap_results()
            .iter()
            .map(|x| x.h2d_events + x.d2h_events)
            .sum::<usize>()
    };
    let op2_events = events(false);
    let ca_events = events(true);
    assert!(
        ca_events < op2_events,
        "CA staged {ca_events}, per-loop staged {op2_events}"
    );
}

/// Device memory accounting covers every dat buffer.
#[test]
fn device_allocation_covers_working_set() {
    let Setup {
        mut mesh, layouts, ..
    } = setup(2);
    let out = run_distributed(&mut mesh.dom, &layouts, |env| {
        let mut dev = GpuDevice::v100();
        gpu_place(env, &mut dev);
        let expect: usize = env.dats.iter().map(|d| d.len() * 8).sum();
        Ok((dev.allocated, expect))
    });
    for (allocated, expect) in out.unwrap_results() {
        assert_eq!(allocated, expect);
        assert!(allocated > 0);
    }
}
