//! The §3.4 flow end-to-end: a chain *configuration file* (the only
//! addition CA makes to OP2's build process) is parsed, resolved
//! against the application's loop declarations, and executed — the
//! shipped `configs/*.cfg` files are the fixtures.

use op2::core::{parse_chain_config, seq};
use op2::hydra::{ExtentMode, Hydra, HydraParams};
use op2::mgcfd::{MgCfd, MgCfdParams};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, rib_partition};
use op2::runtime::exec::{run_chain, run_chain_relaxed, run_loop};
use op2::runtime::run_distributed;

#[test]
fn mgcfd_config_resolves_and_runs() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../configs/mgcfd_chains.cfg"
    ))
    .expect("shipped config present");
    let configs = parse_chain_config(&text).unwrap();
    assert_eq!(configs.len(), 1);
    assert_eq!(configs[0].name, "synthetic8");
    assert_eq!(configs[0].loops.len(), 8);
    assert_eq!(configs[0].max_halo, Some(2));

    let mut params = MgCfdParams::small(7);
    params.nchains = 4;
    let mut app = MgCfd::new(params);

    // The "program": the declared loops the config names.
    let program = vec![app.update_loop(), app.edge_flux_loop(), app.write_pres_loop()];
    let chain = configs[0].resolve(&program).unwrap();
    assert_eq!(chain.len(), 8);
    assert_eq!(chain.max_halo_layers(), 2);
    assert_eq!(chain.halo_ext, vec![2, 1, 2, 1, 2, 1, 2, 1]);

    // Run the resolved chain distributed; compare with sequential.
    let write_pres = app.write_pres_loop();
    let mut seq_dom = app.dom.clone();
    seq::run_loop(&mut seq_dom, &write_pres);
    for l in &chain.loops {
        seq::run_loop(&mut seq_dom, l);
    }

    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, 4);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, 4);
    let layouts = build_layouts(&app.dom, &own, 2);
    run_distributed(&mut app.dom, &layouts, |env| {
        run_loop(env, &write_pres)?;
        run_chain(env, &chain)
    })
    .unwrap_results();
    for d in [app.dres, app.dflux] {
        let a = &seq_dom.dat(d).data;
        let b = &app.dom.dat(d).data;
        let scale = a.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        let err = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
            / scale;
        assert!(err < 1e-12, "dat {} err {err}", seq_dom.dat(d).name);
    }
}

#[test]
fn hydra_config_matches_builtin_paper_chains() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../configs/hydra_chains.cfg"
    ))
    .expect("shipped config present");
    let configs = parse_chain_config(&text).unwrap();
    assert_eq!(configs.len(), 5);

    let app = Hydra::new(HydraParams::small(6));
    // Program: one instance of every loop the configs reference.
    let program = [app.chain("weight", ExtentMode::Safe).unwrap().loops,
        app.chain("vflux", ExtentMode::Safe).unwrap().loops,
        app.chain("iflux", ExtentMode::Safe).unwrap().loops,
        app.chain("gradl", ExtentMode::Safe).unwrap().loops,
        app.chain("jacob", ExtentMode::Safe).unwrap().loops]
    .concat();

    for cfg in &configs {
        let resolved = cfg.resolve(&program).unwrap();
        let builtin = app.chain(&resolved.name, ExtentMode::Paper).unwrap();
        assert_eq!(
            resolved.halo_ext, builtin.halo_ext,
            "chain {} extents from config differ from built-in paper mode",
            resolved.name
        );
    }
}

#[test]
fn hydra_config_driven_execution_runs_relaxed() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../configs/hydra_chains.cfg"
    ))
    .unwrap();
    let configs = parse_chain_config(&text).unwrap();
    let mut app = Hydra::new(HydraParams::small(6));
    let program = [
        app.chain("vflux", ExtentMode::Safe).unwrap().loops,
        app.chain("iflux", ExtentMode::Safe).unwrap().loops,
    ]
    .concat();
    let vflux = configs
        .iter()
        .find(|c| c.name == "vflux")
        .unwrap()
        .resolve(&program)
        .unwrap();

    let init = app.init_loop();
    let base = rib_partition(app.mesh.node_coords(), 3, 3);
    let own = derive_ownership(&app.mesh.dom, app.mesh.nodes, base, 3);
    let layouts = build_layouts(&app.mesh.dom, &own, 2);
    let out = run_distributed(&mut app.mesh.dom, &layouts, |env| {
        run_loop(env, &init)?;
        run_chain_relaxed(env, &vflux)?;
        Ok(env.trace.chains[0].d_exchanged)
    })
    .unwrap_results();
    // Five dats grouped, per Table 4.
    for (rank, d) in out.iter().enumerate() {
        if layouts[rank].neighbors.is_empty() {
            continue;
        }
        assert_eq!(*d, 5, "rank {rank}");
    }
}
