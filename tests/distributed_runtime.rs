//! Distributed-runtime invariants: message accounting, dirty-bit
//! evolution, reductions, and determinism across runs.

use op2::core::{AccessMode, Arg, Args, GblDecl, LoopSpec};
use op2::mesh::Quad2D;
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::exec::run_loop;
use op2::runtime::run_distributed;

fn inc_kernel(args: &Args<'_>) {
    args.inc(0, 0, 1.0);
    args.inc(1, 0, 1.0);
}

fn read_kernel(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) + args.get(1, 0));
    args.inc(3, 0, args.get(0, 0) - args.get(1, 0));
}

fn sum_kernel(args: &Args<'_>) {
    args.inc(1, 0, args.get(0, 0));
}

struct Fixture {
    mesh: Quad2D,
    layouts: Vec<RankLayout>,
    a: op2::core::DatId,
    b: op2::core::DatId,
    inc_loop: LoopSpec,
    read_loop: LoopSpec,
}

fn fixture(nparts: usize) -> Fixture {
    let mut mesh = Quad2D::generate(12, 10);
    let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
    let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
    let inc_loop = LoopSpec::new(
        "inc",
        mesh.edges,
        vec![
            Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
        ],
        inc_kernel,
    );
    let read_loop = LoopSpec::new(
        "read",
        mesh.edges,
        vec![
            Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
            Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
        ],
        read_kernel,
    );
    let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, nparts);
    let own = derive_ownership(&mesh.dom, mesh.nodes, base, nparts);
    let layouts = build_layouts(&mesh.dom, &own, 2);
    Fixture {
        mesh,
        layouts,
        a,
        b,
        inc_loop,
        read_loop,
    }
}

/// Dirty-bit behaviour (§3.1): a dat's halo is exchanged only when it
/// was modified by a preceding loop and is then indirectly read.
#[test]
fn exchanges_follow_dirty_bits() {
    let mut f = fixture(4);
    let inc_loop = f.inc_loop.clone();
    let read_loop = f.read_loop.clone();
    let out = run_distributed(&mut f.mesh.dom, &f.layouts, |env| {
        run_loop(env, &inc_loop)?; // dirties a; INC itself needs no halo
        run_loop(env, &read_loop)?; // must exchange a
        run_loop(env, &read_loop)?; // a clean again: no exchange
        Ok(())
    });
    assert!(out.all_ok());
    for (rank, t) in out.traces.iter().enumerate() {
        if f.layouts[rank].neighbors.is_empty() {
            continue;
        }
        assert_eq!(t.loops[0].d_exchanged, 0, "rank {rank}: INC must not exchange");
        assert_eq!(t.loops[1].d_exchanged, 1, "rank {rank}: read must exchange a");
        assert_eq!(t.loops[2].d_exchanged, 0, "rank {rank}: halo still valid");
    }
}

/// Message counts are symmetric: total sends equal total receives per
/// rank pair (every send segment has a matching recv segment).
#[test]
fn per_loop_message_count_matches_neighbour_count() {
    let mut f = fixture(4);
    let inc_loop = f.inc_loop.clone();
    let read_loop = f.read_loop.clone();
    let out = run_distributed(&mut f.mesh.dom, &f.layouts, |env| {
        run_loop(env, &inc_loop)?;
        run_loop(env, &read_loop)?;
        Ok(())
    });
    for (rank, t) in out.traces.iter().enumerate() {
        let nbrs = f.layouts[rank].neighbors.len();
        // One dat exchanged → at most one message per neighbour.
        assert!(t.loops[1].exch.n_msgs <= nbrs, "rank {rank}");
    }
}

/// Reductions agree with the sequential sum for every rank count.
#[test]
fn reductions_match_across_rank_counts() {
    let mut expected = None;
    for nparts in [1, 2, 3, 6] {
        let mut f = fixture(nparts);
        let vals: Vec<f64> = (0..f.mesh.dom.set(f.mesh.nodes).size)
            .map(|i| (i % 13) as f64)
            .collect();
        let seq_sum: f64 = vals.iter().sum();
        let v = f.mesh.dom.decl_dat("v", f.mesh.nodes, 1, vals);
        let red = LoopSpec::with_gbls(
            "sum",
            f.mesh.nodes,
            vec![Arg::dat_direct(v, AccessMode::Read), Arg::gbl(0, AccessMode::Inc)],
            vec![GblDecl::reduction(1)],
            sum_kernel,
        );
        let out = run_distributed(&mut f.mesh.dom, &f.layouts, |env| run_loop(env, &red));
        for r in out.unwrap_results() {
            assert_eq!(r.gbls[0][0], seq_sum, "nparts {nparts}");
        }
        match expected {
            None => expected = Some(seq_sum),
            Some(e) => assert_eq!(e, seq_sum),
        }
        let _ = (f.a, f.b);
    }
}

/// Two identical runs produce identical traces (determinism).
#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut f = fixture(4);
        let inc_loop = f.inc_loop.clone();
        let read_loop = f.read_loop.clone();
        let out = run_distributed(&mut f.mesh.dom, &f.layouts, |env| {
            run_loop(env, &inc_loop)?;
            run_loop(env, &read_loop)?;
            Ok(())
        });
        let msgs: Vec<usize> = out.traces.iter().map(|t| t.total_msgs()).collect();
        let bytes: Vec<usize> = out.traces.iter().map(|t| t.total_bytes()).collect();
        let data = f.mesh.dom.dat(f.b).data.clone();
        (msgs, bytes, data)
    };
    assert_eq!(run(), run());
}

/// Latency hiding: the core executed while messages are in flight is
/// non-trivial on interior-heavy partitions.
#[test]
fn core_iterations_are_majority_on_few_ranks() {
    let mut f = fixture(2);
    let inc_loop = f.inc_loop.clone();
    let out = run_distributed(&mut f.mesh.dom, &f.layouts, |env| {
        run_loop(env, &inc_loop).map(|_| ())
    });
    for (rank, t) in out.traces.iter().enumerate() {
        let rec = &t.loops[0];
        let total = rec.core_iters + rec.halo_iters;
        assert!(
            rec.core_iters * 2 > total,
            "rank {rank}: core {}/{total} too small",
            rec.core_iters
        );
    }
}

/// Colored parallel execution: results independent of thread count and
/// exactly equal to sequential on integer data (OP2's shared-memory
/// scheme — the coloring serialises conflicting increments by color).
#[test]
fn colored_parallel_matches_sequential() {
    use op2::core::{color_loop, seq};
    let f = fixture(1);
    let inc_loop = f.inc_loop.clone();

    let mut reference = f.mesh.dom.clone();
    seq::run_loop(&mut reference, &inc_loop);

    let coloring = color_loop(&f.mesh.dom, &inc_loop.sig());
    assert!(op2::core::is_valid_coloring(&f.mesh.dom, &inc_loop.sig(), &coloring));
    for n_threads in [1, 2, 4] {
        let mut dom = f.mesh.dom.clone();
        seq::run_loop_colored_parallel(&mut dom, &inc_loop, &coloring, n_threads);
        assert_eq!(
            reference.dat(f.a).data,
            dom.dat(f.a).data,
            "n_threads = {n_threads}"
        );
    }
    let _ = (f.b, f.read_loop);
}

/// MIN/MAX global reductions (OP2's OP_MIN/OP_MAX): identical across
/// rank counts, equal to the sequential fold, and unpolluted by
/// redundant halo iterations.
#[test]
fn min_max_reductions_match() {
    use op2::core::{seq, GblDecl};
    for nparts in [1, 3, 5] {
        let mut f = fixture(nparts);
        let n = f.mesh.dom.set(f.mesh.nodes).size;
        let vals: Vec<f64> = (0..n).map(|i| ((i * 17 + 3) % 101) as f64 - 50.0).collect();
        let seq_min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let seq_max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = f.mesh.dom.decl_dat("v", f.mesh.nodes, 1, vals);

        fn min_kernel(args: &op2::core::Args<'_>) {
            args.reduce_min(1, 0, args.get(0, 0));
        }
        fn max_kernel(args: &op2::core::Args<'_>) {
            args.reduce_max(1, 0, args.get(0, 0));
        }
        let min_loop = LoopSpec::with_gbls(
            "vmin",
            f.mesh.nodes,
            vec![Arg::dat_direct(v, AccessMode::Read), Arg::gbl(0, AccessMode::Inc)],
            vec![GblDecl::min_reduction(1)],
            min_kernel,
        );
        let max_loop = LoopSpec::with_gbls(
            "vmax",
            f.mesh.nodes,
            vec![Arg::dat_direct(v, AccessMode::Read), Arg::gbl(0, AccessMode::Inc)],
            vec![GblDecl::max_reduction(1)],
            max_kernel,
        );
        // Sequential reference agrees.
        let mut seq_dom = f.mesh.dom.clone();
        assert_eq!(seq::run_loop(&mut seq_dom, &min_loop).gbls[0], vec![seq_min]);

        let out = run_distributed(&mut f.mesh.dom, &f.layouts, |env| {
            let mn = run_loop(env, &min_loop)?;
            let mx = run_loop(env, &max_loop)?;
            Ok((mn.gbls[0][0], mx.gbls[0][0]))
        });
        for (mn, mx) in out.unwrap_results() {
            assert_eq!(mn, seq_min, "nparts {nparts}");
            assert_eq!(mx, seq_max, "nparts {nparts}");
        }
        let _ = (f.a, f.b, f.inc_loop, f.read_loop);
    }
}

/// Failure injection: a chain requiring deeper halos than the layouts
/// were built with must fail loudly, not corrupt data. The rank panics
/// are contained by the harness and reported as typed
/// [`RankFailure::Panicked`] values naming each failed rank.
#[test]
fn chain_deeper_than_layout_panics() {
    use op2::core::ChainSpec;
    use op2::runtime::exec::run_chain;
    let mut f = fixture(4); // layouts built with depth 2
    let inc_loop = f.inc_loop.clone();
    let read_loop = f.read_loop.clone();
    // produce -> consume -> consume-into-c ladders to depth 3.
    let c = f.mesh.dom.decl_dat_zeros("c", f.mesh.nodes, 1);
    fn deeper_kernel(args: &op2::core::Args<'_>) {
        args.inc(2, 0, args.get(0, 0));
        args.inc(3, 0, args.get(1, 0));
    }
    let deeper = LoopSpec::new(
        "deeper",
        f.mesh.edges,
        vec![
            Arg::dat_indirect(f.b, f.mesh.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(f.b, f.mesh.e2n, 1, AccessMode::Read),
            Arg::dat_indirect(c, f.mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(c, f.mesh.e2n, 1, AccessMode::Inc),
        ],
        deeper_kernel,
    );
    let chain = ChainSpec::new("deep3", vec![inc_loop, read_loop, deeper], None, &[]).unwrap();
    assert_eq!(chain.max_halo_layers(), 3);
    let out = run_distributed(&mut f.mesh.dom, &f.layouts, |env| {
        run_chain(env, &chain) // depth 3 > built 2: asserts on every rank
    });
    assert!(!out.all_ok());
    for (rank, r) in out.results.iter().enumerate() {
        match r {
            Err(op2::runtime::RankFailure::Panicked { rank: fr, message }) => {
                assert_eq!(*fr as usize, rank);
                assert!(
                    message.contains("needs 3 halo layers"),
                    "rank {rank}: {message}"
                );
            }
            other => panic!("rank {rank}: expected contained panic, got {other:?}"),
        }
    }
}

/// Failure injection: resolving a config against a program missing the
/// named loop reports `UnknownLoop` instead of guessing.
#[test]
fn config_with_unknown_loop_errors() {
    use op2::core::{parse_chain_config, CoreError};
    let f = fixture(1);
    let text = "chain x {\n loops = inc, no_such_loop\n}";
    let cfg = &parse_chain_config(text).unwrap()[0];
    let program = vec![f.inc_loop.clone()];
    match cfg.resolve(&program) {
        Err(CoreError::UnknownLoop(name)) => assert_eq!(name, "no_such_loop"),
        other => panic!("expected UnknownLoop, got {other:?}"),
    }
}
