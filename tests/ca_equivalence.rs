//! Cross-backend equivalence: for chains of indirect loops with
//! *integer-valued* data (where f64 arithmetic is exact and
//! order-independent), the CA back-end (Alg 2), the OP2 baseline
//! (Alg 1) and the sequential reference must agree **bit for bit** —
//! any discrepancy is a logic bug, not rounding.

use op2::core::{seq, AccessMode, Arg, Args, ChainSpec, Domain, LoopSpec};
use op2::mesh::{shuffle::shuffle_set, Annulus, AnnulusParams, Csr, Hex3D, Hex3DParams, Quad2D};
use op2::partition::{
    build_layouts, derive_ownership, kway_partition, rcb_partition, rib_partition, RankLayout,
};
use op2::runtime::exec::{run_chain, run_loop};
use op2::runtime::run_distributed;

/// produce: INC a at both ends, READ seed at both ends.
fn produce_kernel(args: &Args<'_>) {
    args.inc(0, 0, args.get(2, 0) + 1.0);
    args.inc(1, 0, args.get(3, 0) + 2.0);
}

/// transfer: READ a, INC b — the dependency that forces depth 2.
fn transfer_kernel(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0) + args.get(1, 0));
    args.inc(3, 0, args.get(0, 0) - args.get(1, 0));
}

/// deepen: READ b, INC c — extends the chain to depth 3.
fn deepen_kernel(args: &Args<'_>) {
    args.inc(2, 0, 2.0 * args.get(0, 0));
    args.inc(3, 0, args.get(1, 0));
}

struct Chain3 {
    loops: Vec<LoopSpec>,
    dats: Vec<op2::core::DatId>,
}

/// A 3-loop produce → transfer → deepen chain over any edges→nodes map.
fn build_chain3(
    dom: &mut Domain,
    nodes: op2::core::SetId,
    edges: op2::core::SetId,
    e2n: op2::core::MapId,
) -> Chain3 {
    let n = dom.set(nodes).size;
    let seed: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 23) as f64).collect();
    let dseed = dom.decl_dat("seed", nodes, 1, seed);
    let a = dom.decl_dat_zeros("a", nodes, 1);
    let b = dom.decl_dat_zeros("b", nodes, 1);
    let c = dom.decl_dat_zeros("c", nodes, 1);
    let produce = LoopSpec::new(
        "produce",
        edges,
        vec![
            Arg::dat_indirect(a, e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(a, e2n, 1, AccessMode::Inc),
            Arg::dat_indirect(dseed, e2n, 0, AccessMode::Read),
            Arg::dat_indirect(dseed, e2n, 1, AccessMode::Read),
        ],
        produce_kernel,
    );
    let transfer = LoopSpec::new(
        "transfer",
        edges,
        vec![
            Arg::dat_indirect(a, e2n, 0, AccessMode::Read),
            Arg::dat_indirect(a, e2n, 1, AccessMode::Read),
            Arg::dat_indirect(b, e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(b, e2n, 1, AccessMode::Inc),
        ],
        transfer_kernel,
    );
    let deepen = LoopSpec::new(
        "deepen",
        edges,
        vec![
            Arg::dat_indirect(b, e2n, 0, AccessMode::Read),
            Arg::dat_indirect(b, e2n, 1, AccessMode::Read),
            Arg::dat_indirect(c, e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(c, e2n, 1, AccessMode::Inc),
        ],
        deepen_kernel,
    );
    Chain3 {
        loops: vec![produce, transfer, deepen],
        dats: vec![dseed, a, b, c],
    }
}

/// Run the three backends on a prepared domain; assert exact equality.
fn assert_equivalence(dom: &Domain, chain3: &Chain3, layouts: &[RankLayout]) {
    let chain = ChainSpec::new("pc3", chain3.loops.clone(), None, &[]).unwrap();
    assert_eq!(chain.halo_ext, vec![3, 2, 1]);

    let mut seq_dom = dom.clone();
    for l in &chain3.loops {
        seq::run_loop(&mut seq_dom, l);
    }

    let mut op2_dom = dom.clone();
    run_distributed(&mut op2_dom, layouts, |env| {
        for l in &chain3.loops {
            run_loop(env, l)?;
        }
        Ok(())
    })
    .unwrap_results();

    let mut ca_dom = dom.clone();
    run_distributed(&mut ca_dom, layouts, |env| run_chain(env, &chain)).unwrap_results();

    for &d in &chain3.dats {
        let name = &seq_dom.dat(d).name;
        assert_eq!(
            seq_dom.dat(d).data,
            op2_dom.dat(d).data,
            "OP2 != sequential on {name}"
        );
        assert_eq!(
            seq_dom.dat(d).data,
            ca_dom.dat(d).data,
            "CA != sequential on {name}"
        );
    }
}

#[test]
fn quad_mesh_rcb_various_rank_counts() {
    for nparts in [1, 2, 3, 5, 8] {
        let mut m = Quad2D::generate(11, 9);
        let chain3 = build_chain3(&mut m.dom, m.nodes, m.edges, m.e2n);
        let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
        let own = derive_ownership(&m.dom, m.nodes, base, nparts);
        let layouts = build_layouts(&m.dom, &own, 3);
        assert_equivalence(&m.dom, &chain3, &layouts);
    }
}

#[test]
fn hex_mesh_rib() {
    let mut m = Hex3D::generate(Hex3DParams::cube(9));
    let chain3 = build_chain3(&mut m.dom, m.nodes, m.edges, m.e2n);
    let base = rib_partition(m.node_coords(), 3, 6);
    let own = derive_ownership(&m.dom, m.nodes, base, 6);
    let layouts = build_layouts(&m.dom, &own, 3);
    assert_equivalence(&m.dom, &chain3, &layouts);
}

#[test]
fn hex_mesh_kway() {
    let mut m = Hex3D::generate(Hex3DParams::cube(8));
    let chain3 = build_chain3(&mut m.dom, m.nodes, m.edges, m.e2n);
    let graph = Csr::node_graph(m.dom.map(m.e2n), m.dom.set(m.nodes).size);
    let base = kway_partition(&graph, 5, 3);
    let own = derive_ownership(&m.dom, m.nodes, base, 5);
    let layouts = build_layouts(&m.dom, &own, 3);
    assert_equivalence(&m.dom, &chain3, &layouts);
}

/// Shuffled (genuinely unstructured) numbering must not matter.
#[test]
fn shuffled_hex_mesh() {
    let mut m = Hex3D::generate(Hex3DParams::cube(8));
    shuffle_set(&mut m.dom, m.nodes, 1234);
    shuffle_set(&mut m.dom, m.edges, 5678);
    let chain3 = build_chain3(&mut m.dom, m.nodes, m.edges, m.e2n);
    let base = rcb_partition(&m.dom.dat(m.coords).data, 3, 4);
    let own = derive_ownership(&m.dom, m.nodes, base, 4);
    let layouts = build_layouts(&m.dom, &own, 3);
    assert_equivalence(&m.dom, &chain3, &layouts);
}

/// The tetrahedral mesh: degree-14 nodes, fatter halo rings.
#[test]
fn tet_mesh_kuhn_subdivision() {
    let mut m = op2::mesh::Tet3D::generate(7, 7, 7);
    let chain3 = build_chain3(&mut m.dom, m.nodes, m.edges, m.e2n);
    let base = rcb_partition(m.node_coords(), 3, 5);
    let own = derive_ownership(&m.dom, m.nodes, base, 5);
    let layouts = build_layouts(&m.dom, &own, 3);
    assert_equivalence(&m.dom, &chain3, &layouts);
}

/// A tet-mesh chain through the arity-4 tets→nodes map: tets scatter
/// into nodes, edges read the result back.
#[test]
fn tet_mesh_arity4_chain() {
    let mut m = op2::mesh::Tet3D::generate(6, 6, 6);
    let n = m.dom.set(m.nodes).size;
    let seed: Vec<f64> = (0..n).map(|i| ((i * 11 + 5) % 19) as f64).collect();
    let dseed = m.dom.decl_dat("seed", m.nodes, 1, seed);
    let acc = m.dom.decl_dat_zeros("acc", m.nodes, 1);
    let out = m.dom.decl_dat_zeros("out", m.nodes, 1);
    fn tet_kernel(args: &Args<'_>) {
        let s: f64 = (4..8).map(|i| args.get(i, 0)).sum();
        for i in 0..4 {
            args.inc(i, 0, s);
        }
    }
    fn edge_kernel(args: &Args<'_>) {
        args.inc(2, 0, args.get(0, 0));
        args.inc(3, 0, args.get(1, 0));
    }
    let tet_loop = LoopSpec::new(
        "tet_scatter",
        m.tets,
        vec![
            Arg::dat_indirect(acc, m.t2n, 0, AccessMode::Inc),
            Arg::dat_indirect(acc, m.t2n, 1, AccessMode::Inc),
            Arg::dat_indirect(acc, m.t2n, 2, AccessMode::Inc),
            Arg::dat_indirect(acc, m.t2n, 3, AccessMode::Inc),
            Arg::dat_indirect(dseed, m.t2n, 0, AccessMode::Read),
            Arg::dat_indirect(dseed, m.t2n, 1, AccessMode::Read),
            Arg::dat_indirect(dseed, m.t2n, 2, AccessMode::Read),
            Arg::dat_indirect(dseed, m.t2n, 3, AccessMode::Read),
        ],
        tet_kernel,
    );
    let edge_loop = LoopSpec::new(
        "edge_gather",
        m.edges,
        vec![
            Arg::dat_indirect(acc, m.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(acc, m.e2n, 1, AccessMode::Read),
            Arg::dat_indirect(out, m.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(out, m.e2n, 1, AccessMode::Inc),
        ],
        edge_kernel,
    );
    let chain =
        ChainSpec::new("tet_chain", vec![tet_loop.clone(), edge_loop.clone()], None, &[]).unwrap();
    assert_eq!(chain.halo_ext, vec![2, 1]);

    let mut seq_dom = m.dom.clone();
    seq::run_loop(&mut seq_dom, &tet_loop);
    seq::run_loop(&mut seq_dom, &edge_loop);

    let base = rcb_partition(m.node_coords(), 3, 4);
    let own = derive_ownership(&m.dom, m.nodes, base, 4);
    let layouts = build_layouts(&m.dom, &own, 2);
    run_distributed(&mut m.dom, &layouts, |env| run_chain(env, &chain)).unwrap_results();
    assert_eq!(seq_dom.dat(acc).data, m.dom.dat(acc).data);
    assert_eq!(seq_dom.dat(out).data, m.dom.dat(out).data);
}

/// The annular mesh with periodic edges exercises long-range couplings.
#[test]
fn annulus_mesh_with_periodic_couplings() {
    let mut m = Annulus::generate(AnnulusParams::small(7, 7, 7));
    let chain3 = build_chain3(&mut m.dom, m.nodes, m.edges, m.e2n);
    let base = rib_partition(m.node_coords(), 3, 4);
    let own = derive_ownership(&m.dom, m.nodes, base, 4);
    let layouts = build_layouts(&m.dom, &own, 3);
    assert_equivalence(&m.dom, &chain3, &layouts);
}

/// Re-running a chain (dirty halos at entry) still matches: the second
/// execution must trigger a genuine grouped exchange.
#[test]
fn repeated_chain_executions_match() {
    let mut m = Quad2D::generate(10, 10);
    let chain3 = build_chain3(&mut m.dom, m.nodes, m.edges, m.e2n);
    let chain = ChainSpec::new("pc3", chain3.loops.clone(), None, &[]).unwrap();
    let base = rcb_partition(&m.dom.dat(m.coords).data, 2, 4);
    let own = derive_ownership(&m.dom, m.nodes, base, 4);
    let layouts = build_layouts(&m.dom, &own, 3);

    // Dirty `seed` first (a standalone direct write), so the first
    // chain execution has something to import.
    fn bump_seed(args: &Args<'_>) {
        args.set(0, 0, args.get(0, 0) + 1.0);
    }
    let bump = LoopSpec::new(
        "bump_seed",
        m.nodes,
        vec![Arg::dat_direct(chain3.dats[0], AccessMode::Rw)],
        bump_seed,
    );

    let mut seq_dom = m.dom.clone();
    seq::run_loop(&mut seq_dom, &bump);
    for _ in 0..3 {
        for l in &chain3.loops {
            seq::run_loop(&mut seq_dom, l);
        }
    }
    let out = run_distributed(&mut m.dom, &layouts, |env| {
        run_loop(env, &bump)?;
        for _ in 0..3 {
            run_chain(env, &chain)?;
        }
        Ok(env.trace.chains.len())
    });
    assert!(out.all_ok());
    for &d in &chain3.dats {
        assert_eq!(seq_dom.dat(d).data, m.dom.dat(d).data);
    }
    // A pleasant CA property this pins down: the deep redundant
    // execution leaves every dat's halo valid to exactly the depth the
    // next repetition requires (an INC at extent e needs priors to
    // e − 1 and leaves validity e − 1), so only the *first* execution
    // imports anything — repetitions are communication-free while still
    // bit-identical to the sequential reference.
    for (rank, trace) in out.traces.iter().enumerate() {
        if layouts[rank].neighbors.is_empty() {
            continue;
        }
        assert!(trace.chains[0].exch.n_msgs > 0, "rank {rank} first run");
        assert_eq!(trace.chains[1].exch.n_msgs, 0, "rank {rank} second run");
        assert_eq!(trace.chains[2].exch.n_msgs, 0, "rank {rank} third run");
    }
}

/// A chain over two different iteration sets (boundary elements feed
/// edges) with a shared target dat.
#[test]
fn mixed_set_chain() {
    let mut m = Hex3D::generate(Hex3DParams::cube(7));
    let n = m.dom.set(m.nodes).size;
    let seed: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) % 11) as f64).collect();
    let dseed = m.dom.decl_dat("seed", m.nodes, 1, seed);
    let acc = m.dom.decl_dat_zeros("acc", m.nodes, 1);
    let out_dat = m.dom.decl_dat_zeros("out", m.nodes, 1);

    fn bnd_kernel(args: &Args<'_>) {
        args.inc(0, 0, 3.0 * args.get(1, 0));
    }
    fn edge_kernel(args: &Args<'_>) {
        args.inc(2, 0, args.get(0, 0));
        args.inc(3, 0, args.get(1, 0));
    }
    let bnd_loop = LoopSpec::new(
        "bnd_inc",
        m.bnodes,
        vec![
            Arg::dat_indirect(acc, m.b2n, 0, AccessMode::Inc),
            Arg::dat_indirect(dseed, m.b2n, 0, AccessMode::Read),
        ],
        bnd_kernel,
    );
    let edge_loop = LoopSpec::new(
        "edge_read",
        m.edges,
        vec![
            Arg::dat_indirect(acc, m.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(acc, m.e2n, 1, AccessMode::Read),
            Arg::dat_indirect(out_dat, m.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(out_dat, m.e2n, 1, AccessMode::Inc),
        ],
        edge_kernel,
    );
    let chain =
        ChainSpec::new("mixed", vec![bnd_loop.clone(), edge_loop.clone()], None, &[]).unwrap();
    assert_eq!(chain.halo_ext, vec![2, 1]);

    let mut seq_dom = m.dom.clone();
    seq::run_loop(&mut seq_dom, &bnd_loop);
    seq::run_loop(&mut seq_dom, &edge_loop);

    let base = rcb_partition(m.node_coords(), 3, 4);
    let own = derive_ownership(&m.dom, m.nodes, base, 4);
    let layouts = build_layouts(&m.dom, &own, 2);
    run_distributed(&mut m.dom, &layouts, |env| run_chain(env, &chain)).unwrap_results();
    assert_eq!(seq_dom.dat(acc).data, m.dom.dat(acc).data);
    assert_eq!(seq_dom.dat(out_dat).data, m.dom.dat(out_dat).data);
}

/// Distributed CA with intra-rank sparse tiling (MPI rank = outer tile,
/// n inner tiles per rank — the paper's two CA levels combined) equals
/// the sequential reference exactly.
#[test]
fn distributed_tiled_chain_matches() {
    use op2::runtime::exec::run_chain_tiled;
    for n_tiles in [1, 3, 6] {
        let mut m = Hex3D::generate(Hex3DParams::cube(8));
        let chain3 = build_chain3(&mut m.dom, m.nodes, m.edges, m.e2n);
        let chain = ChainSpec::new("pc3", chain3.loops.clone(), None, &[]).unwrap();

        let mut seq_dom = m.dom.clone();
        for l in &chain3.loops {
            seq::run_loop(&mut seq_dom, l);
        }

        let base = rcb_partition(m.node_coords(), 3, 4);
        let own = derive_ownership(&m.dom, m.nodes, base, 4);
        let layouts = build_layouts(&m.dom, &own, 3);
        let out = run_distributed(&mut m.dom, &layouts, |env| {
            run_chain_tiled(env, &chain, n_tiles)
        });
        assert!(out.all_ok());
        for &d in &chain3.dats {
            assert_eq!(
                seq_dom.dat(d).data,
                m.dom.dat(d).data,
                "n_tiles = {n_tiles}, dat {}",
                seq_dom.dat(d).name
            );
        }
        // Same single grouped exchange as the untiled chain.
        for (rank, t) in out.traces.iter().enumerate() {
            assert!(t.chains[0].exch.n_msgs <= layouts[rank].neighbors.len());
        }
    }
}
