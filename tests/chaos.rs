//! Chaos suite: the fault-tolerant runtime under injected faults.
//!
//! Gated behind the (default-on) `chaos` feature of the facade crate so
//! `cargo test` exercises it as part of tier-1, while
//! `--no-default-features` builds can skip it.
//!
//! Three behaviours are pinned down:
//!
//! 1. **Lossy-but-live links are invisible to the numerics**: with
//!    drops, duplicates, corruption and delays injected (but no
//!    permanent loss), the run matches the sequential reference
//!    *exactly*, and the recovery counters prove faults actually fired.
//! 2. **A rank crash mid-program is contained**: the dead rank is
//!    reported by name as a typed [`RankFailure::Panicked`], survivors
//!    unwind promptly via hangup (well inside the receive deadline),
//!    and the harness returns instead of deadlocking.
//! 3. **A silent peer is a typed timeout**: a blackholed link plus a
//!    stalled sender surfaces as [`CommError::Timeout`] naming the peer
//!    and the wait, bounded by the configured deadline.

#![cfg(feature = "chaos")]

use std::time::{Duration, Instant};

use op2::core::{AccessMode, Arg, Args, ChainSpec, LoopSpec};
use op2::mesh::Quad2D;
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};
use op2::runtime::exec::{run_chain, run_loop};
use op2::runtime::{
    run_distributed_with, Boundary, BoundaryKind, CommConfig, CommError, FaultPlan, FaultSpec,
    RankFailure, RunOptions, RuntimeError,
};

fn produce_kernel(args: &Args<'_>) {
    args.inc(0, 0, args.get(2, 0) + 1.0);
    args.inc(1, 0, args.get(3, 0) + 2.0);
}

fn consume_kernel(args: &Args<'_>) {
    args.inc(2, 0, args.get(0, 0));
    args.inc(3, 0, args.get(1, 0));
}

fn bump_kernel(args: &Args<'_>) {
    args.set(0, 0, args.get(0, 0) + 1.0);
}

struct Setup {
    mesh: Quad2D,
    layouts: Vec<RankLayout>,
    /// Direct RW loop on `seed`: dirties its halo every iteration so
    /// each chain execution genuinely exchanges.
    bump: LoopSpec,
    chain: ChainSpec,
    dats: Vec<op2::core::DatId>,
}

fn setup(nparts: usize) -> Setup {
    let mut mesh = Quad2D::generate(10, 8);
    let n = mesh.dom.set(mesh.nodes).size;
    let seed: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64).collect();
    let dseed = mesh.dom.decl_dat("seed", mesh.nodes, 1, seed);
    let a = mesh.dom.decl_dat_zeros("a", mesh.nodes, 1);
    let b = mesh.dom.decl_dat_zeros("b", mesh.nodes, 1);
    let bump = LoopSpec::new(
        "bump",
        mesh.nodes,
        vec![Arg::dat_direct(dseed, AccessMode::Rw)],
        bump_kernel,
    );
    let produce = LoopSpec::new(
        "produce",
        mesh.edges,
        vec![
            Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Inc),
            Arg::dat_indirect(dseed, mesh.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(dseed, mesh.e2n, 1, AccessMode::Read),
        ],
        produce_kernel,
    );
    let consume = LoopSpec::new(
        "consume",
        mesh.edges,
        vec![
            Arg::dat_indirect(a, mesh.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(a, mesh.e2n, 1, AccessMode::Read),
            Arg::dat_indirect(b, mesh.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(b, mesh.e2n, 1, AccessMode::Inc),
        ],
        consume_kernel,
    );
    let chain = ChainSpec::new("pc", vec![produce, consume], None, &[]).unwrap();
    let base = rcb_partition(&mesh.dom.dat(mesh.coords).data, 2, nparts);
    let own = derive_ownership(&mesh.dom, mesh.nodes, base, nparts);
    let layouts = build_layouts(&mesh.dom, &own, 2);
    Setup {
        mesh,
        layouts,
        bump,
        chain,
        dats: vec![dseed, a, b],
    }
}

/// Acceptance 1: drops + duplicates + corruption + delays (all
/// recoverable — no blackholes, no crashes) leave the results bitwise
/// equal to the sequential reference, and the recovery counters are
/// nonzero, proving the faults actually exercised the retry paths.
#[test]
fn lossy_network_matches_sequential_exactly() {
    let iters = 6;
    let Setup {
        mut mesh,
        layouts,
        bump,
        chain,
        dats,
    } = setup(4);

    let mut seq_dom = mesh.dom.clone();
    for _ in 0..iters {
        op2::core::seq::run_loop(&mut seq_dom, &bump);
        for l in &chain.loops {
            op2::core::seq::run_loop(&mut seq_dom, l);
        }
    }

    let spec = FaultSpec {
        drop_permille: 300,
        dup_permille: 300,
        corrupt_permille: 300,
        delay_permille: 300,
        max_delay: Duration::from_micros(300),
        ..FaultSpec::chaos(0xc0ffee)
    };
    let opts = RunOptions::with_faults(FaultPlan::new(spec));
    let out = run_distributed_with(&mut mesh.dom, &layouts, &opts, |env| {
        for _ in 0..iters {
            run_loop(env, &bump)?;
            run_chain(env, &chain)?;
        }
        Ok(())
    });
    assert!(out.all_ok(), "failures: {:?}", out.failures());

    for &d in &dats {
        assert_eq!(
            seq_dom.dat(d).data,
            mesh.dom.dat(d).data,
            "dat {} diverged under a lossy (but lossless-in-the-limit) link",
            seq_dom.dat(d).name
        );
    }

    // The faults genuinely fired and were recovered from.
    let c = out.total_comm_counters();
    assert!(c.any_recovery(), "no recovery recorded: {c:?}");
    assert!(c.injected_drops > 0, "no drops injected: {c:?}");
    assert!(c.injected_dups > 0, "no duplicates injected: {c:?}");
    assert!(c.injected_corrupt > 0, "no corruption injected: {c:?}");
    assert!(c.retransmits > 0, "no retransmissions: {c:?}");
    assert!(c.retries > 0, "receiver never discarded and re-waited: {c:?}");
    assert!(c.corrupt_dropped > 0, "no corrupt copy discarded: {c:?}");
    assert!(c.duplicates_dropped > 0, "no duplicate discarded: {c:?}");
    assert_eq!(c.timeouts, 0, "recoverable faults must not time out: {c:?}");
}

/// Acceptance 2: a rank crashing mid-program (at a chain boundary)
/// terminates the whole run promptly — well within one receive deadline
/// — with a typed per-rank error naming the crashed rank. Survivors
/// either finish or unwind with `PeerHangup` on the dead rank.
#[test]
fn crash_mid_chain_is_contained_and_prompt() {
    let iters = 3;
    let Setup {
        mut mesh,
        layouts,
        bump,
        chain,
        ..
    } = setup(4);

    let deadline = Duration::from_secs(30);
    let spec = FaultSpec::default().with_crash(1, Boundary::new(BoundaryKind::Chain, 0));
    let opts = RunOptions::with_faults(FaultPlan::new(spec)).comm_config(CommConfig {
        deadline,
        ..CommConfig::default()
    });

    let t0 = Instant::now();
    let out = run_distributed_with(&mut mesh.dom, &layouts, &opts, |env| {
        for _ in 0..iters {
            run_loop(env, &bump)?;
            run_chain(env, &chain)?;
        }
        Ok(())
    });
    let elapsed = t0.elapsed();

    // Prompt termination: the hangup broadcast spares survivors their
    // full deadline. Allow generous slack for slow CI machines while
    // still proving we did not serve the 30s deadline.
    assert!(
        elapsed < deadline / 2,
        "crash took {elapsed:?} to surface (deadline {deadline:?})"
    );
    assert!(!out.all_ok());

    // The crashed rank is named, as a contained panic.
    match &out.results[1] {
        Err(RankFailure::Panicked { rank: 1, message }) => {
            assert!(
                message.contains("rank 1 crashed at Chain boundary 0"),
                "unexpected panic message: {message}"
            );
        }
        other => panic!("expected rank 1 contained crash, got {other:?}"),
    }

    // Survivors either completed or died blaming a dead peer (rank 1
    // directly, or a neighbour that itself unwound in the cascade).
    let failed: Vec<usize> = out
        .results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_err())
        .map(|(i, _)| i)
        .collect();
    for (rank, r) in out.results.iter().enumerate() {
        if rank == 1 {
            continue;
        }
        match r {
            Ok(()) => {}
            Err(RankFailure::Failed {
                rank: fr,
                error: RuntimeError::Comm(CommError::PeerHangup { peer }),
            }) => {
                assert_eq!(*fr as usize, rank);
                assert!(
                    failed.contains(&(*peer as usize)),
                    "rank {rank} blamed live peer {peer}"
                );
            }
            other => panic!("rank {rank}: unexpected verdict {other:?}"),
        }
    }
    // At least one neighbour of rank 1 must have observed the hangup.
    let hangups: u64 = out.traces.iter().map(|t| t.comm.hangups_seen).sum();
    assert!(hangups > 0, "no rank observed the crash hangup");
}

/// Acceptance 3: a silent-but-alive peer (blackholed link + stalled
/// sender) surfaces as a typed `Timeout` naming the peer, after the
/// configured deadline and bounded retries — not a deadlock, not a
/// panic.
#[test]
fn blackholed_link_times_out_with_typed_error() {
    let Setup {
        mut mesh,
        layouts,
        bump,
        chain,
        ..
    } = setup(2);

    let deadline = Duration::from_millis(250);
    // Rank 1 transmits into a black hole towards rank 0, and stalls
    // after its first loop for longer than rank 0's deadline, so rank 0
    // times out before rank 1's eventual exit hangup could arrive.
    let spec = FaultSpec {
        blackhole: vec![(1, 0)],
        ..FaultSpec::default()
    }
    .with_stall(1, Boundary::new(BoundaryKind::Loop, 0), Duration::from_secs(2));
    let opts = RunOptions::with_faults(FaultPlan::new(spec)).comm_config(CommConfig {
        deadline,
        ..CommConfig::default()
    });

    let t0 = Instant::now();
    let out = run_distributed_with(&mut mesh.dom, &layouts, &opts, |env| {
        run_loop(env, &bump)?;
        run_chain(env, &chain)?;
        Ok(())
    });
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "timeout path took {elapsed:?}"
    );

    match &out.results[0] {
        Err(RankFailure::Failed {
            rank: 0,
            error: RuntimeError::Comm(CommError::Timeout { from, waited, .. }),
        }) => {
            assert_eq!(*from, 1, "timed out on the wrong peer");
            assert!(
                *waited >= deadline,
                "reported wait {waited:?} below deadline {deadline:?}"
            );
        }
        other => panic!("expected rank 0 timeout, got {other:?}"),
    }
    assert!(out.traces[0].comm.timeouts > 0);
}
