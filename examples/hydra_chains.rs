//! Hydra's six benchmarked loop-chains: analysis and execution.
//!
//! Prints, for every chain of Tables 3–4, the halo-extension analysis
//! (published vs the literal Algorithm 3 vs the transitive closure),
//! then runs the solver distributed in both extent modes and reports
//! message counts and staleness.
//!
//! Run with `cargo run --release --example hydra_chains`.

use op2::core::chain::{calc_halo_extents, calc_halo_layers};
use op2::hydra::{run_ca, run_op2, run_sequential, ExtentMode, Hydra, HydraParams};
use op2::partition::{build_layouts, derive_ownership, rib_partition, RankLayout};

fn layouts_for(app: &Hydra, nparts: usize, depth: usize) -> Vec<RankLayout> {
    let base = rib_partition(app.mesh.node_coords(), 3, nparts);
    let own = derive_ownership(&app.mesh.dom, app.mesh.nodes, base, nparts);
    build_layouts(&app.mesh.dom, &own, depth)
}

fn main() {
    let params = HydraParams::small(12);
    let app = Hydra::new(params);
    println!(
        "Hydra passage: {} nodes, {} edges, {} periodic edges, {} wall elems, {} centreline elems\n",
        app.mesh.dom.set(app.mesh.nodes).size,
        app.mesh.dom.set(app.mesh.edges).size,
        app.mesh.dom.set(app.mesh.pedges).size,
        app.mesh.dom.set(app.mesh.bnd).size,
        app.mesh.dom.set(app.mesh.cbnd).size,
    );

    println!("{:<8} {:>6} | {:<18} {:<18} {:<18}", "chain", "loops", "paper HE", "literal Alg3", "transitive");
    for name in Hydra::chain_names() {
        let chain = app.chain(name, ExtentMode::Safe).unwrap();
        let sigs = chain.sigs();
        println!(
            "{:<8} {:>6} | {:<18} {:<18} {:<18}",
            name,
            chain.len(),
            format!("{:?}", Hydra::paper_extents(name)),
            format!("{:?}", calc_halo_layers(&sigs).per_loop),
            format!("{:?}", calc_halo_extents(&sigs)),
        );
    }

    let iters = 2;
    let nparts = 4;

    let mut seq_app = Hydra::new(params);
    let seq = run_sequential(&mut seq_app, iters);
    println!("\nsequential            : norm {:.6e}", seq.norm);

    let mut op2_app = Hydra::new(params);
    let l = layouts_for(&op2_app, nparts, op2_app.required_depth(ExtentMode::Safe));
    let op2 = run_op2(&mut op2_app, &l, iters);
    let op2_msgs: usize = op2.traces.iter().map(|t| t.total_msgs()).sum();
    println!("OP2 baseline          : norm {:.6e}, {op2_msgs} msgs", op2.norm);

    let mut safe_app = Hydra::new(params);
    let l = layouts_for(&safe_app, nparts, safe_app.required_depth(ExtentMode::Safe));
    let safe = run_ca(&mut safe_app, &l, iters, ExtentMode::Safe);
    let safe_msgs: usize = safe.traces.iter().map(|t| t.total_msgs()).sum();
    println!(
        "CA (safe extents)     : norm {:.6e}, {safe_msgs} msgs",
        safe.norm
    );

    let mut paper_app = Hydra::new(params);
    let l = layouts_for(&paper_app, nparts, paper_app.required_depth(ExtentMode::Paper));
    let paper = run_ca(&mut paper_app, &l, iters, ExtentMode::Paper);
    let paper_msgs: usize = paper.traces.iter().map(|t| t.total_msgs()).sum();
    let stale: usize = paper
        .traces
        .iter()
        .flat_map(|t| t.chains.iter())
        .map(|c| c.stale_reads)
        .sum();
    println!(
        "CA (paper extents)    : norm {:.6e}, {paper_msgs} msgs, {stale} stale reads tolerated",
        paper.norm
    );

    assert!((seq.norm - safe.norm).abs() <= 1e-10 * seq.norm.abs());
    assert!(safe_msgs < op2_msgs);
    println!("\nok");
}
