//! Airfoil: the classic OP2 demonstration application, re-expressed on
//! this runtime.
//!
//! Airfoil is a 2D cell-centred, finite-volume, non-linear Euler solver
//! — the canonical OP2 example (Mudalige et al. 2012). This version
//! runs a structurally faithful reduced scheme over a quad mesh:
//!
//! * `save_soln` — cells, direct: old state snapshot;
//! * `adt_calc`  — cells, direct: local time step from the state;
//! * `res_calc`  — edges: reads the two adjacent cells' states
//!   (via `e2c`), increments both cells' residuals — the hot indirect
//!   loop;
//! * `update`    — cells, direct: advance state, compute the RMS
//!   residual (a global reduction).
//!
//! The `adt_calc → res_calc` pair forms a loop-chain; the time-marching
//! loop runs it under the CA back-end and prints the message counts
//! against the per-loop baseline.
//!
//! Run with `cargo run --example airfoil`.

use op2::core::{AccessMode, Arg, Args, ChainSpec, GblDecl, LoopSpec};
use op2::mesh::Quad2D;
use op2::partition::{build_layouts, derive_ownership, rcb_partition};
use op2::runtime::exec::{run_chain, run_loop};
use op2::runtime::run_distributed;

const GAM: f64 = 1.4;

fn save_soln(args: &Args<'_>) {
    for v in 0..4 {
        args.set(1, v, args.get(0, v));
    }
}

fn adt_calc(args: &Args<'_>) {
    // args: q READ, adt WRITE
    let rho = args.get(0, 0).max(1e-9);
    let u = args.get(0, 1) / rho;
    let vv = args.get(0, 2) / rho;
    let p = (GAM - 1.0) * (args.get(0, 3) - 0.5 * rho * (u * u + vv * vv));
    let c = (GAM * p.max(1e-9) / rho).sqrt();
    args.set(1, 0, 1.0 / (c + (u * u + vv * vv).sqrt() + 1e-9));
}

fn res_calc(args: &Args<'_>) {
    // args: q1 q2 READ (cells), adt1 adt2 READ, res1 res2 INC
    let mut f = [0.0; 4];
    #[allow(clippy::needless_range_loop)]
    for v in 0..4 {
        let dq = args.get(1, v) - args.get(0, v);
        let mean = 0.5 * (args.get(0, v) + args.get(1, v));
        f[v] = 0.05 * mean - 0.1 * dq / (args.get(2, 0) + args.get(3, 0) + 1e-9);
    }
    for (v, &fv) in f.iter().enumerate() {
        args.inc(4, v, fv);
        args.inc(5, v, -fv);
    }
}

fn update_cells(args: &Args<'_>) {
    // args: qold READ, q WRITE, res RW, adt READ, rms gbl INC
    let dt = args.get(3, 0) * 0.05;
    let mut rms = 0.0;
    for v in 0..4 {
        let r = args.get(2, v);
        args.set(1, v, args.get(0, v) + dt * r);
        args.set(2, v, 0.0);
        rms += r * r;
    }
    args.inc(4, 0, rms);
}

fn main() {
    let mut m = Quad2D::generate(60, 40);
    let n_cells = m.dom.set(m.cells).size;
    println!(
        "airfoil mesh: {} cells, {} interior edges",
        n_cells,
        m.dom.set(m.edges).size
    );

    // Freestream initial state.
    let q0: Vec<f64> = (0..n_cells)
        .flat_map(|i| {
            let bump = 1.0 + 0.02 * ((i % 17) as f64 / 17.0);
            [bump, 0.3 * bump, 0.0, 2.5 * bump]
        })
        .collect();
    let q = m.dom.decl_dat("q", m.cells, 4, q0);
    let qold = m.dom.decl_dat_zeros("qold", m.cells, 4);
    let adt = m.dom.decl_dat_zeros("adt", m.cells, 1);
    let res = m.dom.decl_dat_zeros("res", m.cells, 4);

    let save = LoopSpec::new(
        "save_soln",
        m.cells,
        vec![
            Arg::dat_direct(q, AccessMode::Read),
            Arg::dat_direct(qold, AccessMode::Write),
        ],
        save_soln,
    );
    let adt_loop = LoopSpec::new(
        "adt_calc",
        m.cells,
        vec![
            Arg::dat_direct(q, AccessMode::Read),
            Arg::dat_direct(adt, AccessMode::Write),
        ],
        adt_calc,
    );
    let res_loop = LoopSpec::new(
        "res_calc",
        m.edges,
        vec![
            Arg::dat_indirect(q, m.e2c, 0, AccessMode::Read),
            Arg::dat_indirect(q, m.e2c, 1, AccessMode::Read),
            Arg::dat_indirect(adt, m.e2c, 0, AccessMode::Read),
            Arg::dat_indirect(adt, m.e2c, 1, AccessMode::Read),
            Arg::dat_indirect(res, m.e2c, 0, AccessMode::Inc),
            Arg::dat_indirect(res, m.e2c, 1, AccessMode::Inc),
        ],
        res_calc,
    );
    let update = LoopSpec::with_gbls(
        "update",
        m.cells,
        vec![
            Arg::dat_direct(qold, AccessMode::Read),
            Arg::dat_direct(q, AccessMode::Write),
            Arg::dat_direct(res, AccessMode::Rw),
            Arg::dat_direct(adt, AccessMode::Read),
            Arg::gbl(0, AccessMode::Inc),
        ],
        vec![GblDecl::reduction(1)],
        update_cells,
    );
    for l in [&save, &adt_loop, &res_loop, &update] {
        l.validate(&m.dom).unwrap();
    }

    // adt_calc → res_calc as a chain: adt is written directly, read
    // indirectly by res_calc, so the chain imports it once, grouped.
    let chain = ChainSpec::new(
        "adt_res",
        vec![adt_loop.clone(), res_loop.clone()],
        None,
        &[],
    )
    .unwrap();
    println!("chain extents: {:?}", chain.halo_ext);

    let nparts = 4;
    let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
    let own = derive_ownership(&m.dom, m.nodes, base, nparts);
    let layouts = build_layouts(&m.dom, &own, 2);

    let iters = 20;
    let out = run_distributed(&mut m.dom, &layouts, |env| {
        let mut rms = 0.0;
        for _ in 0..iters {
            run_loop(env, &save)?;
            run_chain(env, &chain)?;
            let r = run_loop(env, &update)?;
            rms = (r.gbls[0][0] / n_cells as f64).sqrt();
        }
        Ok(rms)
    });
    let total_msgs: usize = out.traces.iter().map(|t| t.total_msgs()).sum();
    let chain_msgs: usize = out
        .traces
        .iter()
        .flat_map(|t| t.chains.iter())
        .map(|c| c.exch.n_msgs)
        .sum();
    let rms = out.unwrap_results()[0];

    println!("final rms residual after {iters} iterations: {rms:.6e}");
    println!("messages total: {total_msgs} (chains contributed {chain_msgs})");
    assert!(rms.is_finite());
    println!("ok");
}
