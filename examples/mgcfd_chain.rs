//! MG-CFD with the synthetic loop-chain (§4.1 of the paper).
//!
//! Runs the full mini-app — multigrid Euler solver plus the extendable
//! `update`/`edge_flux` chain — under the OP2 baseline and the CA
//! back-end, and prints per-backend message statistics plus the
//! numerical agreement between the two.
//!
//! Run with `cargo run --release --example mgcfd_chain`.

use op2::mgcfd::{run_ca, run_op2, run_sequential, MgCfd, MgCfdParams};
use op2::partition::{build_layouts, derive_ownership, rcb_partition, RankLayout};

fn layouts_for(app: &MgCfd, nparts: usize) -> Vec<RankLayout> {
    let coords = &app.dom.dat(app.levels[0].ids.coords).data;
    let base = rcb_partition(coords, 3, nparts);
    let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, nparts);
    build_layouts(&app.dom, &own, 2)
}

fn main() {
    let mut params = MgCfdParams::small(14);
    params.nchains = 8; // a 16-loop synthetic chain
    let iters = 4;
    let nparts = 6;

    println!(
        "MG-CFD: {}^3-node finest grid, {} multigrid levels, chain of {} loops, {} ranks",
        params.finest.nx,
        params.levels,
        2 * params.nchains,
        nparts
    );

    // Sequential reference.
    let mut seq_app = MgCfd::new(params);
    let seq = run_sequential(&mut seq_app, iters);
    println!("sequential  : final flow norm {:.6}", seq.rms);

    // OP2 baseline.
    let mut op2_app = MgCfd::new(params);
    let layouts = layouts_for(&op2_app, nparts);
    let op2 = run_op2(&mut op2_app, &layouts, iters);
    let op2_msgs: usize = op2.traces.iter().map(|t| t.total_msgs()).sum();
    let op2_bytes: usize = op2.traces.iter().map(|t| t.total_bytes()).sum();
    println!(
        "OP2 baseline: final flow norm {:.6}, {} msgs, {} B exchanged",
        op2.rms, op2_msgs, op2_bytes
    );

    // CA back-end.
    let mut ca_app = MgCfd::new(params);
    let layouts = layouts_for(&ca_app, nparts);
    let ca = run_ca(&mut ca_app, &layouts, iters);
    let ca_msgs: usize = ca.traces.iter().map(|t| t.total_msgs()).sum();
    let ca_bytes: usize = ca.traces.iter().map(|t| t.total_bytes()).sum();
    println!(
        "CA back-end : final flow norm {:.6}, {} msgs, {} B exchanged",
        ca.rms, ca_msgs, ca_bytes
    );

    let rel = (seq.rms - ca.rms).abs() / seq.rms.abs().max(1e-30);
    println!(
        "agreement   : |seq - CA| / |seq| = {rel:.3e}; message reduction {:.1}%",
        100.0 * (1.0 - ca_msgs as f64 / op2_msgs.max(1) as f64)
    );
    assert!(rel < 1e-10);
    assert!(ca_msgs < op2_msgs);
    println!("ok");
}
