//! Shared-memory sparse tiling (§2.2's second CA level).
//!
//! Builds the Luporini tile-growth schedule for an 8-loop synthetic
//! chain over an MG-CFD mesh, prints how the tiles grow (every loop's
//! boundary iterations migrate forward to satisfy dependencies), and
//! verifies tiled execution equals plain loop-by-loop sweeps.
//!
//! Run with `cargo run --release --example sparse_tiling`.

use op2::core::tiling::{build_tile_plan, run_chain_tiled, seed_blocks};
use op2::core::seq;
use op2::mgcfd::{MgCfd, MgCfdParams};

fn main() {
    let mut params = MgCfdParams::small(16);
    params.levels = 1;
    params.nchains = 4;
    let mut app = MgCfd::new(params);
    let init = app.init_loop(0);
    seq::run_loop(&mut app.dom, &init);
    let write_pres = app.write_pres_loop();
    seq::run_loop(&mut app.dom, &write_pres);

    let chain = app.synthetic_chain().unwrap();
    let n_edges = app.dom.set(app.levels[0].ids.edges).size;
    println!(
        "chain of {} loops over {} edges; halo extents {:?}",
        chain.len(),
        n_edges,
        chain.halo_ext
    );

    let n_tiles = 8;
    let seed = seed_blocks(n_edges, n_tiles);
    let plan = build_tile_plan(&app.dom, &chain.sigs(), &seed);
    println!("\ntile sizes per loop (tiles grow forward to satisfy deps):");
    print!("{:>8}", "loop");
    for t in 0..n_tiles {
        print!("{:>7}", format!("T{t}"));
    }
    println!();
    for (j, per_tile) in plan.iters.iter().enumerate() {
        print!("{:>8}", chain.loops[j].name);
        for bucket in per_tile {
            print!("{:>7}", bucket.len());
        }
        println!();
    }

    // Tiled execution must equal plain sweeps.
    let mut plain = app.dom.clone();
    for l in &chain.loops {
        seq::run_loop(&mut plain, l);
    }
    run_chain_tiled(&mut app.dom, &chain, &plan);
    let dflux = app.dflux;
    let max_err = plain
        .dat(dflux)
        .data
        .iter()
        .zip(&app.dom.dat(dflux).data)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / plain
            .dat(dflux)
            .data
            .iter()
            .fold(1e-30f64, |m, v| m.max(v.abs()));
    println!("\nmax relative |tiled - plain| on dflux: {max_err:.3e}");
    assert!(max_err < 1e-12);

    println!(
        "\nconflict levels: {} levels over {} tiles, level of each tile: {:?}",
        plan.n_levels, plan.n_tiles, plan.levels
    );
    for (lv, bucket) in plan.by_level.iter().enumerate() {
        println!("  level {lv}: tiles {bucket:?}");
    }
    println!("ok");
}
