//! Quickstart: the paper's running example (Figures 1–3).
//!
//! Builds a small 2D quad mesh (nodes, edges, cells), declares the
//! `res`/`pres`/`cw`/`flux` dats of Figure 3, registers the two-loop
//! chain `update` → `edge_flux`, and runs it three ways:
//!
//! 1. sequentially (the reference);
//! 2. distributed over 4 ranks with standard OP2 (Alg 1 — one halo
//!    exchange per loop);
//! 3. distributed with the CA back-end (Alg 2 — one grouped, depth-2
//!    exchange for the whole chain).
//!
//! Run with `cargo run --example quickstart`.

use op2::core::{seq, AccessMode, Arg, Args, ChainSpec, LoopSpec};
use op2::mesh::Quad2D;
use op2::partition::{build_layouts, derive_ownership, rcb_partition};
use op2::runtime::exec::{run_chain, run_loop};
use op2::runtime::run_distributed;

/// Figure 2, lines 4-11: edges increment node residuals from pressures.
fn update(args: &Args<'_>) {
    args.inc(0, 0, args.get(2, 0) - args.get(2, 1));
    args.inc(0, 1, args.get(3, 0) - args.get(3, 1));
    args.inc(1, 0, args.get(3, 1) - args.get(3, 0));
    args.inc(1, 1, args.get(2, 1) - args.get(2, 0));
}

/// Figure 2, lines 14-29: edges accumulate fluxes from residuals and
/// the cell weights either side.
fn edge_flux(args: &Args<'_>) {
    // args: res1 res2 (READ), cw1 cw2 (READ), flux1 flux2 (INC)
    args.inc(4, 0, args.get(0, 0) * args.get(2, 0) - args.get(0, 1) * args.get(2, 1));
    args.inc(4, 1, args.get(1, 1) * args.get(2, 2) - args.get(1, 0) * args.get(2, 3));
    args.inc(5, 0, args.get(1, 1) * args.get(3, 2) - args.get(0, 1) * args.get(3, 3));
    args.inc(5, 1, args.get(0, 0) * args.get(3, 0) - args.get(0, 1) * args.get(3, 1));
}

fn main() {
    // The mesh of Figure 1: nodes, edges, quadrilateral cells.
    let mut m = Quad2D::generate(16, 12);
    let n_nodes = m.dom.set(m.nodes).size;
    let n_cells = m.dom.set(m.cells).size;
    println!(
        "mesh: {} nodes, {} edges, {} cells",
        n_nodes,
        m.dom.set(m.edges).size,
        n_cells
    );

    // Figure 3's dat declarations.
    let pres: Vec<f64> = (0..n_nodes * 2).map(|i| (i as f64 * 0.37).sin()).collect();
    let cw: Vec<f64> = (0..n_cells * 4).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let dres = m.dom.decl_dat_zeros("res", m.nodes, 2);
    let dpres = m.dom.decl_dat("pres", m.nodes, 2, pres);
    let dcw = m.dom.decl_dat("cw", m.cells, 4, cw);
    let dflux = m.dom.decl_dat_zeros("flux", m.nodes, 2);

    // Figure 3's op_par_loop declarations.
    let update_loop = LoopSpec::new(
        "update",
        m.edges,
        vec![
            Arg::dat_indirect(dres, m.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(dres, m.e2n, 1, AccessMode::Inc),
            Arg::dat_indirect(dpres, m.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(dpres, m.e2n, 1, AccessMode::Read),
        ],
        update,
    );
    let flux_loop = LoopSpec::new(
        "edge_flux",
        m.edges,
        vec![
            Arg::dat_indirect(dres, m.e2n, 0, AccessMode::Read),
            Arg::dat_indirect(dres, m.e2n, 1, AccessMode::Read),
            Arg::dat_indirect(dcw, m.e2c, 0, AccessMode::Read),
            Arg::dat_indirect(dcw, m.e2c, 1, AccessMode::Read),
            Arg::dat_indirect(dflux, m.e2n, 0, AccessMode::Inc),
            Arg::dat_indirect(dflux, m.e2n, 1, AccessMode::Inc),
        ],
        edge_flux,
    );
    update_loop.validate(&m.dom).unwrap();
    flux_loop.validate(&m.dom).unwrap();

    // The 2-loop chain: the analysis derives halo extents [2, 1] — the
    // producer computes one redundant layer deeper (Figure 7).
    let chain = ChainSpec::new(
        "update_flux",
        vec![update_loop.clone(), flux_loop.clone()],
        None,
        &[],
    )
    .unwrap();
    println!(
        "chain halo extents: {:?} (update needs depth 2)",
        chain.halo_ext
    );

    // A small writer that refreshes `pres` each outer iteration (as a
    // real solver would), dirtying its halos so every chain execution
    // genuinely exchanges data.
    fn perturb(args: &Args<'_>) {
        args.set(0, 0, args.get(0, 0) * 0.9 + 0.01);
        args.set(0, 1, args.get(0, 1) * 0.9 - 0.01);
    }
    let perturb_loop = LoopSpec::new(
        "perturb",
        m.nodes,
        vec![Arg::dat_direct(dpres, AccessMode::Rw)],
        perturb,
    );

    let iters = 3;
    // 1. Sequential reference.
    let mut seq_dom = m.dom.clone();
    for _ in 0..iters {
        seq::run_loop(&mut seq_dom, &perturb_loop);
        seq::run_loop(&mut seq_dom, &update_loop);
        seq::run_loop(&mut seq_dom, &flux_loop);
    }

    // Partition the nodes over 4 ranks; derive everything else.
    let nparts = 4;
    let base = rcb_partition(&m.dom.dat(m.coords).data, 2, nparts);
    let own = derive_ownership(&m.dom, m.nodes, base, nparts);
    let layouts = build_layouts(&m.dom, &own, 2);

    // 2. Standard OP2 (per-loop exchanges).
    let mut op2_dom = m.dom.clone();
    let op2 = run_distributed(&mut op2_dom, &layouts, |env| {
        for _ in 0..iters {
            run_loop(env, &perturb_loop)?;
            run_loop(env, &update_loop)?;
            run_loop(env, &flux_loop)?;
        }
        Ok(())
    });
    assert!(op2.all_ok());

    // 3. CA back-end (one grouped exchange per chain execution).
    let ca = run_distributed(&mut m.dom, &layouts, |env| {
        for _ in 0..iters {
            run_loop(env, &perturb_loop)?;
            run_chain(env, &chain)?;
        }
        Ok(())
    });
    assert!(ca.all_ok());

    // Same numbers, fewer messages.
    let max_err = seq_dom
        .dat(dflux)
        .data
        .iter()
        .zip(&m.dom.dat(dflux).data)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |CA - sequential| on flux: {max_err:.3e}");
    let op2_msgs: usize = op2.traces.iter().map(|t| t.total_msgs()).sum();
    let ca_msgs: usize = ca.traces.iter().map(|t| t.total_msgs()).sum();
    println!("messages: OP2 = {op2_msgs}, CA = {ca_msgs}");
    assert!(max_err < 1e-12);
    assert!(ca_msgs > 0 && ca_msgs < op2_msgs);
    println!("ok");
}
