//! Analytic-model explorer: when does a loop-chain profit from CA?
//!
//! Sweeps the paper's model (Eqs 1–4) over partition sizes and loop
//! counts for a synthetic chain, using measured halo statistics at one
//! configuration and surface/volume extrapolation everywhere else —
//! printing the gain% landscape whose sign structure is the paper's
//! central profitability insight (§3.2):
//!
//! * gains appear where communication dominates the shrinking cores
//!   (strong scaling, high rank counts);
//! * longer chains amplify the saved message latencies;
//! * heavy redundant computation (deep extents, expensive kernels)
//!   erodes the benefit.
//!
//! Run with `cargo run --release --example model_explorer`.

use op2::mesh::Hex3DParams;
use op2::model::eqs::{gain_percent, t_ca_chain, t_op2_chain};
use op2::model::{extrapolate_components, Machine};
use op2_bench_is_not_a_dep::*;

// The bench crate isn't a dependency of the facade; inline the small
// amount of plumbing needed here.
mod op2_bench_is_not_a_dep {
    use op2::core::LoopSig;
    use op2::mesh::{Csr, Hex3DParams};
    use op2::model::components::{chain_components, shape_from_sigs_relaxed, ChainComponents};
    use op2::partition::{collect_stats, derive_ownership, kway_partition};

    /// Measured components for the MG-CFD synthetic chain at one
    /// configuration.
    pub fn measure(mesh: Hex3DParams, ranks: usize, n_loops: usize, g: f64) -> ChainComponents {
        let mut params = op2::mgcfd::MgCfdParams::small(4);
        params.finest = mesh;
        params.levels = 1;
        params.nchains = n_loops / 2;
        let app = op2::mgcfd::MgCfd::new(params);
        let l0 = &app.levels[0];
        let graph = Csr::node_graph(app.dom.map(l0.ids.e2n), app.dom.set(l0.ids.nodes).size);
        let base = kway_partition(&graph, ranks, 2);
        let own = derive_ownership(&app.dom, l0.ids.nodes, base, ranks);
        let stats = collect_stats(&app.dom, &own, 2, 4);
        let chain = app.synthetic_chain().unwrap();
        let sigs: Vec<LoopSig> = chain.sigs();
        let gs = vec![g; sigs.len()];
        let shape =
            shape_from_sigs_relaxed(&app.dom, "syn", &sigs, &chain.halo_ext, &gs, &|_| 0);
        chain_components(&stats, &shape)
    }
}

fn main() {
    let mach = Machine::archer2();
    let mesh = Hex3DParams::cube(32);
    let ref_ranks = 16;
    println!(
        "reference measurement: {}^3 nodes on {ref_ranks} ranks (k-way)\n",
        mesh.nx
    );

    let rank_sweep = [16usize, 64, 256, 1024, 4096];
    let loop_counts = [2usize, 4, 8, 16, 32];

    println!("gain%% of CA over OP2 (rows: ranks; cols: loop count)");
    print!("{:>8}", "ranks");
    for &n in &loop_counts {
        print!("{n:>9}");
    }
    println!();
    for &ranks in &rank_sweep {
        print!("{ranks:>8}");
        for &n_loops in &loop_counts {
            let comp = measure(mesh, ref_ranks, n_loops, mach.g_default);
            // Extrapolate the reference partition statistics to the
            // target rank count (same mesh, more parts).
            let scaled = extrapolate_components(
                &comp,
                mesh.n_nodes(),
                ref_ranks,
                mesh.n_nodes() * 125, // an 8M-class mesh
                ranks,
            );
            let t_op2 = t_op2_chain(&mach, &scaled.op2_loops);
            let t_ca = t_ca_chain(&mach, &scaled.ca);
            print!("{:>9.1}", gain_percent(t_op2, t_ca));
        }
        println!();
    }
    println!(
        "\nReading the landscape: gains grow to the lower-right (more\n\
         ranks, longer chains); the upper-left corner is where the paper\n\
         warns CA can lose."
    );
}
