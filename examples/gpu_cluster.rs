//! The simulated GPU cluster (§3.3): MG-CFD's synthetic chain on
//! virtual V100s.
//!
//! Runs the chain on 4 simulated GPUs under both back-ends, prints the
//! host↔device staging traffic each one generates, and converts the
//! measured traces into modelled Cirrus seconds — the mechanism behind
//! Figure 11's early GPU gains (grouping collapses the per-loop PCIe
//! staging events even when no bytes are saved).
//!
//! Run with `cargo run --release --example gpu_cluster`.

use op2::gpu::{chain_time, gpu_place, loop_time, run_chain_gpu, run_loop_gpu, GpuDevice};
use op2::mgcfd::{MgCfd, MgCfdParams};
use op2::model::Machine;
use op2::partition::{build_layouts, derive_ownership, rcb_partition};
use op2::runtime::run_distributed;

fn main() {
    let mut params = MgCfdParams::small(14);
    params.levels = 1;
    params.nchains = 8;
    let iters = 3;
    let n_gpus = 4;
    let mach = Machine::cirrus();

    let build = || {
        let app = MgCfd::new(params);
        let coords = &app.dom.dat(app.levels[0].ids.coords).data;
        let base = rcb_partition(coords, 3, n_gpus);
        let own = derive_ownership(&app.dom, app.levels[0].ids.nodes, base, n_gpus);
        let layouts = build_layouts(&app.dom, &own, 2);
        (app, layouts)
    };

    println!(
        "MG-CFD synthetic chain ({} loops) on {} simulated V100s, {} iterations\n",
        2 * params.nchains,
        n_gpus,
        iters
    );

    // Per-loop OP2 on the GPUs.
    let (mut op2_app, layouts) = build();
    let init = op2_app.init_loop(0);
    let write_pres = op2_app.write_pres_loop();
    let chain = op2_app.synthetic_chain().unwrap();
    let gs = vec![mach.g_default; chain.len()];
    let op2_out = run_distributed(&mut op2_app.dom, &layouts, |env| {
        let mut dev = GpuDevice::v100();
        gpu_place(env, &mut dev);
        run_loop_gpu(env, &mut dev, &init)?;
        let mut modelled = 0.0;
        for _ in 0..iters {
            run_loop_gpu(env, &mut dev, &write_pres)?;
            for l in &chain.loops {
                run_loop_gpu(env, &mut dev, l)?;
            }
        }
        // Model the chain-loop records of the last iteration.
        let n = chain.len();
        for rec in env.trace.loops.iter().rev().take(n) {
            modelled += loop_time(&mach, rec, mach.g_default);
        }
        Ok((dev.xfer, modelled))
    })
    .unwrap_results();

    // CA on the GPUs.
    let (mut ca_app, layouts) = build();
    let init = ca_app.init_loop(0);
    let write_pres = ca_app.write_pres_loop();
    let chain = ca_app.synthetic_chain().unwrap();
    let ca_out = run_distributed(&mut ca_app.dom, &layouts, |env| {
        let mut dev = GpuDevice::v100();
        gpu_place(env, &mut dev);
        run_loop_gpu(env, &mut dev, &init)?;
        let mut modelled = 0.0;
        for _ in 0..iters {
            run_loop_gpu(env, &mut dev, &write_pres)?;
            run_chain_gpu(env, &mut dev, &chain)?;
        }
        let rec = env.trace.chains.last().expect("chain ran");
        modelled += chain_time(&mach, rec, &gs);
        Ok((dev.xfer, modelled))
    })
    .unwrap_results();

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "backend", "D2H events", "H2D events", "D2H bytes", "H2D bytes", "model t/chain"
    );
    for (label, out) in [("OP2", &op2_out), ("CA", &ca_out)] {
        let d2h: usize = out.iter().map(|(x, _)| x.d2h_events).sum();
        let h2d: usize = out.iter().map(|(x, _)| x.h2d_events).sum();
        let d2hb: usize = out.iter().map(|(x, _)| x.d2h_bytes).sum();
        let h2db: usize = out.iter().map(|(x, _)| x.h2d_bytes).sum();
        let t = out.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
        println!("{label:<10} {d2h:>12} {h2d:>12} {d2hb:>12} {h2db:>12} {t:>13.3e}s");
    }

    // Numerics agree between the two GPU back-ends.
    let max_err = op2_app
        .dom
        .dat(op2_app.dflux)
        .data
        .iter()
        .zip(&ca_app.dom.dat(ca_app.dflux).data)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |OP2 - CA| on dflux: {max_err:.3e}");
    assert!(max_err < 1e-9);

    let op2_events: usize = op2_out
        .iter()
        .map(|(x, _)| x.d2h_events + x.h2d_events)
        .sum();
    let ca_events: usize = ca_out
        .iter()
        .map(|(x, _)| x.d2h_events + x.h2d_events)
        .sum();
    println!(
        "staging events: OP2 = {op2_events}, CA = {ca_events} ({}x fewer)",
        op2_events / ca_events.max(1)
    );
    assert!(ca_events < op2_events);
    println!("ok");
}
