//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides exactly the subset of the `rand` 0.8 API the workspace
//! consumes: a deterministic seedable generator (`rngs::StdRng` via
//! `SeedableRng::seed_from_u64`), the `RngCore`/`Rng` sampling traits,
//! and `seq::SliceRandom::shuffle` (Fisher–Yates). The generator is
//! SplitMix64 — statistically fine for mesh shuffles and test-case
//! generation, and fully reproducible across platforms, which is what
//! the repo's seeded tests rely on.

/// Core generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — also reused by the deterministic fault plans.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience sampling on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `[0, bound)` (Lemire-style rejection-free
    /// widening multiply; bias is negligible for the bounds used here).
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small adjacent seeds.
            let mut state = seed ^ 0x5D58_8B65_6C07_8965;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice utilities (the `shuffle` subset).
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range_u64(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut w = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(7));
        w.shuffle(&mut StdRng::seed_from_u64(7));
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle must move something");
    }

    #[test]
    fn bounded_sampling_stays_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for bound in [1u64, 2, 7, 100] {
            for _ in 0..200 {
                assert!(r.gen_range_u64(bound) < bound);
            }
        }
        for _ in 0..200 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
