//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), integer-range /
//! bool / option strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: cases are sampled from a
//! deterministic per-test stream (seeded by the test name), so a failure
//! reproduces exactly on rerun — which is what the repo's determinism
//! tests (fault-injection replay, seeded meshes) actually require.

use rand::rngs::StdRng;
use rand::SeedableRng;
pub use rand::{Rng, RngCore};

/// Test-case failure raised by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable reason.
    pub message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

/// Per-test run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to sample.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The deterministic per-test sampling stream.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Seed a runner from the test's name and the case index.
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32)),
        }
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.gen_range_u64(bound)
    }
}

/// A value generator. The strategies here sample directly (no shrink
/// trees).
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + runner.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + runner.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Constant strategy (always yields its value).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

pub mod bool {
    use super::{Strategy, TestRunner};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical instance (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, runner: &mut TestRunner) -> bool {
            runner.below(2) == 1
        }
    }
}

pub mod option {
    use super::{Strategy, TestRunner};

    /// Strategy for `Option<S::Value>`: ~25% `None`.
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Self::Value {
            if runner.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(runner))
            }
        }
    }
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both {:?}",
                l
            )));
        }
    }};
}

/// The `proptest!` block macro: a config header plus test functions
/// whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __runner = $crate::TestRunner::new(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __runner);)*
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest `{}` case {} failed: {}",
                        stringify!($name), __case, e.message
                    );
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn options_and_bools_sample(
            flag in crate::bool::ANY,
            opt in crate::option::of(1usize..4),
        ) {
            let _ = flag;
            if let Some(v) = opt {
                prop_assert!((1..4).contains(&v));
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = TestRunner::new("t", 0);
        let mut b = TestRunner::new("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRunner::new("t", 1);
        assert_ne!(TestRunner::new("t", 0).next_u64(), c.next_u64());
    }
}
