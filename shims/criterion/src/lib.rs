//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple median-of-samples
//! wall-clock timer. No plots, no statistics beyond min/median, but the
//! benches compile, run, and print comparable per-iteration times.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (reported as elements/sec when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the closure given to `iter`; times the hot loop.
pub struct Bencher {
    samples: u32,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, once per sample, recording per-call wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn report(name: &str, results: &[Duration], throughput: Option<Throughput>) {
    if results.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut sorted = results.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let extra = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            format!(
                "  {:.1} Melem/s",
                n as f64 / median.as_secs_f64() / 1.0e6
            )
        }
        Some(Throughput::Bytes(b)) if median.as_nanos() > 0 => {
            format!("  {:.1} MiB/s", b as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{name:<50} median {median:>12.3?}  min {min:>12.3?}{extra}");
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        report(name, &b.results, None);
        self
    }

    /// Run a parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&id.to_string(), &b.results, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group sharing throughput annotations.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1) as u32;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.parent.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b.results, self.throughput);
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.parent.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.results, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
